//! §5.1.3 name-service analyses: DNS latency/types/return codes and
//! NetBIOS-NS request types, name types and failure rates.

use super::DatasetTraces;
use crate::report::Table;
use crate::stats::{pct, Ecdf};
use ent_proto::dns::{QType, RCode};
use ent_proto::netbios::NsOpcode;
use std::collections::HashMap;

/// DNS characteristics for one dataset.
#[derive(Debug, Clone, Default)]
pub struct DnsCharacteristics {
    /// Median query latency to internal servers, milliseconds.
    pub latency_ent_ms: Option<f64>,
    /// Median query latency to external servers, milliseconds.
    pub latency_wan_ms: Option<f64>,
    /// Request-type shares (%): A, AAAA, PTR, MX, other.
    pub qtype_pct: [f64; 5],
    /// NOERROR share of answered queries (%).
    pub noerror_pct: f64,
    /// NXDOMAIN share (%).
    pub nxdomain_pct: f64,
    /// Share of requests issued by the top two clients (%): the paper
    /// finds the two main SMTP servers lead.
    pub top2_client_pct: f64,
    /// Total transactions.
    pub total: u64,
}

/// DNS query latency CDFs (internal vs external servers), the
/// distribution behind the paper's §5.1.3 median-latency claim.
pub fn dns_latency_figure(rows: &[(&str, &DatasetTraces)]) -> crate::report::Figure {
    let mut f = crate::report::Figure::new("DNS query latency (sec. 5.1.3)", "milliseconds");
    for (name, traces) in rows {
        let (mut ent, mut wan) = (Vec::new(), Vec::new());
        for t in traces.iter() {
            for d in &t.dns {
                if let Some(us) = d.latency_us {
                    let ms = us as f64 / 1_000.0;
                    if d.server_internal {
                        ent.push(ms);
                    } else {
                        wan.push(ms);
                    }
                }
            }
        }
        f.series(format!("ent:{name}"), Ecdf::new(ent));
        f.series(format!("wan:{name}"), Ecdf::new(wan));
    }
    f
}

/// Compute DNS characteristics.
pub fn dns_characteristics(traces: &DatasetTraces) -> DnsCharacteristics {
    let mut lat_ent = Vec::new();
    let mut lat_wan = Vec::new();
    let mut qtypes = [0u64; 5];
    let (mut noerr, mut nx, mut answered) = (0u64, 0u64, 0u64);
    let mut per_client: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for t in traces {
        for d in &t.dns {
            total += 1;
            *per_client.entry(d.client.0).or_default() += 1;
            let qi = match d.qtype {
                QType::A => 0,
                QType::Aaaa => 1,
                QType::Ptr => 2,
                QType::Mx => 3,
                _ => 4,
            };
            if let Some(q) = qtypes.get_mut(qi) {
                *q += 1;
            }
            if let Some(rc) = d.rcode {
                answered += 1;
                match rc {
                    RCode::NoError => noerr += 1,
                    RCode::NxDomain => nx += 1,
                    _ => {}
                }
            }
            if let Some(us) = d.latency_us {
                let ms = us as f64 / 1_000.0;
                if d.server_internal {
                    lat_ent.push(ms);
                } else {
                    lat_wan.push(ms);
                }
            }
        }
    }
    let mut counts: Vec<u64> = per_client.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top2: u64 = counts.iter().take(2).sum();
    DnsCharacteristics {
        latency_ent_ms: Ecdf::new(lat_ent).median(),
        latency_wan_ms: Ecdf::new(lat_wan).median(),
        qtype_pct: qtypes.map(|c| pct(c, total)),
        noerror_pct: pct(noerr, answered),
        nxdomain_pct: pct(nx, answered),
        top2_client_pct: pct(top2, total),
        total,
    }
}

/// NetBIOS-NS characteristics for one dataset.
#[derive(Debug, Clone, Default)]
pub struct NbnsCharacteristics {
    /// Query share of requests (%) — paper: 81–85%.
    pub query_pct: f64,
    /// Refresh share (%) — paper: 12–15%.
    pub refresh_pct: f64,
    /// Other opcodes (%).
    pub other_pct: f64,
    /// Workstation/server name-type share of queries (%) — 63–71%.
    pub host_name_pct: f64,
    /// Domain/browser name-type share (%) — 22–32%.
    pub domain_browser_pct: f64,
    /// Share of *distinct* query names that yield a name error (%) —
    /// the paper's 36–50% staleness observation.
    pub distinct_query_failure_pct: f64,
    /// Top-10 client share of requests (%) — paper: < 40%.
    pub top10_client_pct: f64,
    /// Total requests.
    pub total: u64,
}

/// Compute NBNS characteristics.
pub fn nbns_characteristics(traces: &DatasetTraces) -> NbnsCharacteristics {
    let (mut query, mut refresh, mut other) = (0u64, 0u64, 0u64);
    let (mut host_t, mut dom_t, mut typed) = (0u64, 0u64, 0u64);
    let mut per_name_fail: HashMap<String, (bool, bool)> = HashMap::new(); // (ok seen, fail seen)
    let mut per_client: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for t in traces {
        for n in &t.nbns {
            total += 1;
            *per_client.entry(n.client.0).or_default() += 1;
            match n.opcode {
                NsOpcode::Query => {
                    query += 1;
                    typed += 1;
                    if n.name_type.is_host() {
                        host_t += 1;
                    } else if n.name_type.is_domain_browser() {
                        dom_t += 1;
                    }
                    let e = per_name_fail.entry(n.name.clone()).or_default();
                    match n.rcode {
                        Some(0) => e.0 = true,
                        Some(3) => e.1 = true,
                        _ => {}
                    }
                }
                NsOpcode::Refresh => refresh += 1,
                _ => other += 1,
            }
        }
    }
    let answered_names = per_name_fail.values().filter(|(ok, fail)| *ok || *fail).count() as u64;
    let failed_names = per_name_fail
        .values()
        .filter(|(ok, fail)| *fail && !*ok)
        .count() as u64;
    let mut counts: Vec<u64> = per_client.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top10: u64 = counts.iter().take(10).sum();
    NbnsCharacteristics {
        query_pct: pct(query, total),
        refresh_pct: pct(refresh, total),
        other_pct: pct(other, total),
        host_name_pct: pct(host_t, typed),
        domain_browser_pct: pct(dom_t, typed),
        distinct_query_failure_pct: pct(failed_names, answered_names),
        top10_client_pct: pct(top10, total),
        total,
    }
}

/// Render the §5.1.3 characteristics across datasets.
pub fn name_services_table(rows: &[(&str, DnsCharacteristics, NbnsCharacteristics)]) -> Table {
    let headers: Vec<&str> = std::iter::once("").chain(rows.iter().map(|(n, _, _)| *n)).collect();
    let mut t = Table::new("Name services (paper sec. 5.1.3)", &headers);
    let f = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
    macro_rules! push {
        ($label:expr, $get:expr) => {{
            let mut row = vec![$label.to_string()];
            #[allow(clippy::redundant_closure_call)]
            {
                row.extend(rows.iter().map($get));
            }
            t.row(row);
        }};
    }
    push!("DNS med lat ent (ms)", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| f(r.1.latency_ent_ms));
    push!("DNS med lat wan (ms)", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| f(r.1.latency_wan_ms));
    push!("DNS A%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.qtype_pct[0]));
    push!("DNS AAAA%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.qtype_pct[1]));
    push!("DNS PTR%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.qtype_pct[2]));
    push!("DNS MX%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.qtype_pct[3]));
    push!("DNS NOERROR%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.noerror_pct));
    push!("DNS NXDOMAIN%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.1.nxdomain_pct));
    push!("NBNS query%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.query_pct));
    push!("NBNS refresh%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.refresh_pct));
    push!("NBNS host-name%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.host_name_pct));
    push!("NBNS dom/browser%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.domain_browser_pct));
    push!("NBNS name-fail%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.distinct_query_failure_pct));
    push!("NBNS top10-client%", |r: &(&str, DnsCharacteristics, NbnsCharacteristics)| format!("{:.0}%", r.2.top10_client_pct));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{DnsRecord, NbnsRecord, TraceAnalysis};
    use ent_proto::netbios::NameType;
    use ent_wire::ipv4;

    #[test]
    fn dns_latency_and_types() {
        let mut t = TraceAnalysis::default();
        for i in 0..10 {
            t.dns.push(DnsRecord {
                qtype: if i < 6 { QType::A } else { QType::Aaaa },
                rcode: Some(if i == 0 { RCode::NxDomain } else { RCode::NoError }),
                latency_us: Some(if i % 2 == 0 { 400 } else { 20_000 }),
                client: ipv4::Addr::new(10, 100, 0, 10),
                server: if i % 2 == 0 {
                    ipv4::Addr::new(10, 100, 24, 10)
                } else {
                    ipv4::Addr::new(64, 0, 0, 1)
                },
                server_internal: i % 2 == 0,
            });
        }
        let d = dns_characteristics(&[t]);
        assert_eq!(d.total, 10);
        assert_eq!(d.latency_ent_ms, Some(0.4));
        assert_eq!(d.latency_wan_ms, Some(20.0));
        assert_eq!(d.qtype_pct[0], 60.0);
        assert_eq!(d.qtype_pct[1], 40.0);
        assert_eq!(d.nxdomain_pct, 10.0);
        assert_eq!(d.top2_client_pct, 100.0);
    }

    #[test]
    fn nbns_staleness_by_distinct_name() {
        let mut t = TraceAnalysis::default();
        // "GOOD" queried 3 times, succeeds; "STALE" twice, fails.
        for _ in 0..3 {
            t.nbns.push(NbnsRecord {
                opcode: NsOpcode::Query,
                name: "GOOD".into(),
                name_type: NameType::Workstation,
                rcode: Some(0),
                client: ipv4::Addr::new(10, 100, 1, 30),
            });
        }
        for _ in 0..2 {
            t.nbns.push(NbnsRecord {
                opcode: NsOpcode::Query,
                name: "STALE".into(),
                name_type: NameType::Server,
                rcode: Some(3),
                client: ipv4::Addr::new(10, 100, 1, 31),
            });
        }
        t.nbns.push(NbnsRecord {
            opcode: NsOpcode::Refresh,
            name: "GOOD".into(),
            name_type: NameType::Workstation,
            rcode: Some(0),
            client: ipv4::Addr::new(10, 100, 1, 30),
        });
        let n = nbns_characteristics(&[t]);
        assert!((n.query_pct - 5.0 / 6.0 * 100.0).abs() < 1e-6);
        assert!((n.refresh_pct - 1.0 / 6.0 * 100.0).abs() < 1e-6);
        // 1 of 2 distinct names consistently fails.
        assert_eq!(n.distinct_query_failure_pct, 50.0);
        assert_eq!(n.host_name_pct, 100.0);
        let table = name_services_table(&[("D0", dns_characteristics(&[]), n)]);
        assert!(table.render().contains("NBNS name-fail%"));
    }
}
