//! Web sessions: objects downloaded per client/server session.
//!
//! The paper (§5.1.1) reports that about half the web sessions consist of
//! a single object while 10–20% include 10 or more, with no significant
//! internal/WAN or cross-dataset difference. We approximate a "session"
//! as all of one client's transactions against one server within a trace
//! (browsing a site within an hour-long window).

use super::DatasetTraces;
use crate::report::Figure;
use crate::stats::Ecdf;
use std::collections::HashMap;

/// Objects-per-session distributions, internal vs WAN servers.
#[derive(Debug, Clone, Default)]
pub struct WebSessions {
    /// Objects per session against internal servers.
    pub ent: Ecdf,
    /// Objects per session against WAN servers.
    pub wan: Ecdf,
}

impl WebSessions {
    /// Fraction of sessions with exactly one object.
    pub fn single_object_frac(&self) -> f64 {
        let n = self.ent.n() + self.wan.n();
        if n == 0 {
            return 0.0;
        }
        let singles = self.ent.fraction_le(1.0) * self.ent.n() as f64
            + self.wan.fraction_le(1.0) * self.wan.n() as f64;
        singles / n as f64
    }

    /// Fraction of sessions with ten or more objects.
    pub fn ten_plus_frac(&self) -> f64 {
        let n = self.ent.n() + self.wan.n();
        if n == 0 {
            return 0.0;
        }
        let le9 = self.ent.fraction_le(9.0) * self.ent.n() as f64
            + self.wan.fraction_le(9.0) * self.wan.n() as f64;
        1.0 - le9 / n as f64
    }
}

/// Compute objects-per-session distributions (automated clients excluded,
/// as in the paper).
pub fn web_sessions(traces: &DatasetTraces) -> WebSessions {
    let mut ent: HashMap<(u32, u32), u64> = HashMap::new();
    let mut wan: HashMap<(u32, u32), u64> = HashMap::new();
    for t in traces {
        for h in &t.http {
            if h.tx.client.is_automated() {
                continue;
            }
            // An object = a transaction that returned content (or a 304).
            if !h.tx.is_successful() {
                continue;
            }
            let key = (h.client.0, h.server.0);
            *if h.server_internal {
                ent.entry(key).or_default()
            } else {
                wan.entry(key).or_default()
            } += 1;
        }
    }
    WebSessions {
        ent: Ecdf::new(ent.values().map(|&v| v as f64).collect()),
        wan: Ecdf::new(wan.values().map(|&v| v as f64).collect()),
    }
}

/// Render the objects-per-session figure across datasets.
pub fn sessions_figure(rows: &[(&str, WebSessions)]) -> Figure {
    let mut f = Figure::new(
        "Web sessions: objects per session (paper sec. 5.1.1 text)",
        "objects",
    );
    for (name, s) in rows {
        f.series(format!("ent:{name}"), s.ent.clone());
        f.series(format!("wan:{name}"), s.wan.clone());
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{HttpRecord, TraceAnalysis};
    use ent_proto::http::{ClientKind, ContentClass, HttpTransaction};
    use ent_wire::ipv4;

    fn tx(status: u16, client: ClientKind) -> HttpTransaction {
        HttpTransaction {
            method: "GET".into(),
            uri: "/".into(),
            host: None,
            client,
            conditional: false,
            request_body_len: 0,
            status,
            content: ContentClass::Text,
            response_body_len: 100,
        }
    }

    #[test]
    fn sessions_grouped_by_pair() {
        let mut t = TraceAnalysis::default();
        let c1 = ipv4::Addr::new(10, 100, 1, 30);
        let srv = ipv4::Addr::new(64, 0, 0, 1);
        // c1 fetches 12 objects from srv; c2 fetches 1.
        for _ in 0..12 {
            t.http.push(HttpRecord {
                tx: tx(200, ClientKind::Browser),
                client: c1,
                server: srv,
                server_internal: false,
            });
        }
        t.http.push(HttpRecord {
            tx: tx(200, ClientKind::Browser),
            client: ipv4::Addr::new(10, 100, 1, 31),
            server: srv,
            server_internal: false,
        });
        // Bot traffic excluded.
        t.http.push(HttpRecord {
            tx: tx(200, ClientKind::GoogleBot2),
            client: ipv4::Addr::new(10, 100, 1, 32),
            server: srv,
            server_internal: false,
        });
        // Failed request: not an object.
        t.http.push(HttpRecord {
            tx: tx(404, ClientKind::Browser),
            client: ipv4::Addr::new(10, 100, 1, 33),
            server: srv,
            server_internal: false,
        });
        let s = web_sessions(&[t]);
        assert_eq!(s.wan.n(), 2);
        assert_eq!(s.wan.quantile(1.0), Some(12.0));
        assert!((s.single_object_frac() - 0.5).abs() < 1e-9);
        assert!((s.ten_plus_frac() - 0.5).abs() < 1e-9);
        assert!(sessions_figure(&[("D0", s)]).render().contains("wan:D0"));
    }
}
