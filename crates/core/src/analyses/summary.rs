//! Table 1: dataset characteristics.

use super::DatasetTraces;
use crate::records::is_internal;
use crate::report::Table;
use std::collections::HashSet;

/// One dataset's Table 1 row set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Dataset label.
    pub name: String,
    /// Number of traces (subnet × pass).
    pub traces: usize,
    /// Duration of each trace, seconds.
    pub trace_secs: u64,
    /// Monitored subnets.
    pub subnets: usize,
    /// Maximum monitoring passes per subnet (the paper's "Per Tap" row).
    pub passes: u8,
    /// Total packets.
    pub packets: u64,
    /// Snaplen.
    pub snaplen: u32,
    /// Hosts on the monitored subnets seen in the traffic.
    pub monitored_hosts: usize,
    /// All internal hosts seen.
    pub internal_hosts: usize,
    /// External hosts seen.
    pub remote_hosts: usize,
}

/// Compute Table 1 for one dataset. `snaplen` comes from trace metadata
/// via the pipeline caller.
pub fn dataset_summary(name: &str, traces: &DatasetTraces, snaplen: u32) -> DatasetSummary {
    let mut monitored: HashSet<u32> = HashSet::new();
    let mut internal: HashSet<u32> = HashSet::new();
    let mut remote: HashSet<u32> = HashSet::new();
    let mut subnets: HashSet<u16> = HashSet::new();
    let mut packets = 0u64;
    let mut passes = 0u8;
    for t in traces {
        packets += t.packets;
        subnets.insert(t.subnet);
        passes = passes.max(t.pass);
        for c in &t.conns {
            // A host exists only if it *sent* something: the target of an
            // unanswered background probe is an address, not a host.
            let mut addrs = Vec::with_capacity(2);
            if c.summary.orig.packets > 0 {
                addrs.push(c.orig_addr());
            }
            if c.summary.resp.packets > 0 {
                addrs.push(c.resp_addr());
            }
            for addr in addrs {
                if addr.is_multicast() || addr.is_broadcast() {
                    continue;
                }
                if is_internal(addr) {
                    internal.insert(addr.0);
                    if addr.octets()[2] as u16 == t.subnet {
                        monitored.insert(addr.0);
                    }
                } else {
                    remote.insert(addr.0);
                }
            }
        }
    }
    DatasetSummary {
        name: name.to_string(),
        traces: traces.len(),
        trace_secs: traces.first().map(|t| t.duration_secs).unwrap_or(0),
        subnets: subnets.len(),
        passes,
        packets,
        snaplen,
        monitored_hosts: monitored.len(),
        internal_hosts: internal.len(),
        remote_hosts: remote.len(),
    }
}

/// Render Table 1 across datasets.
pub fn table1(summaries: &[DatasetSummary]) -> Table {
    let mut t = Table::new(
        "Table 1: Dataset characteristics",
        [""]
            .into_iter()
            .chain(summaries.iter().map(|s| s.name.as_str()))
            .collect::<Vec<_>>()
            .as_slice(),
    );
    let rows: Vec<(&str, Box<dyn Fn(&DatasetSummary) -> String>)> = vec![
        (
            "Duration",
            Box::new(|s| {
                if s.trace_secs >= 3_600 {
                    format!("{} hr", s.trace_secs / 3_600)
                } else {
                    format!("{} min", s.trace_secs / 60)
                }
            }),
        ),
        ("Per Tap", Box::new(|s| s.passes.to_string())),
        ("# Traces", Box::new(|s| s.traces.to_string())),
        ("# Subnets", Box::new(|s| s.subnets.to_string())),
        (
            "# Packets",
            Box::new(|s| {
                if s.packets >= 1_000_000 {
                    format!("{:.1}M", s.packets as f64 / 1e6)
                } else {
                    format!("{:.1}K", s.packets as f64 / 1e3)
                }
            }),
        ),
        ("Snaplen", Box::new(|s| s.snaplen.to_string())),
        ("Mon. Hosts", Box::new(|s| s.monitored_hosts.to_string())),
        ("LBNL Hosts", Box::new(|s| s.internal_hosts.to_string())),
        ("Remote Hosts", Box::new(|s| s.remote_hosts.to_string())),
    ];
    for (label, f) in rows {
        let mut row = vec![label.to_string()];
        row.extend(summaries.iter().map(f));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn conn(orig: ipv4::Addr, resp: ipv4::Addr) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(orig, 1),
                    resp: Endpoint::new(resp, 2),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    packets: 2,
                    ..Default::default()
                },
                resp: DirStats {
                    packets: 2,
                    ..Default::default()
                },
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: Category::OtherTcp,
        }
    }

    #[test]
    fn host_sets_partitioned_correctly() {
        let mut t = TraceAnalysis {
            dataset: "D0".into(),
            subnet: 3,
            packets: 100,
            duration_secs: 600,
            ..Default::default()
        };
        t.conns.push(conn(
            ipv4::Addr::new(10, 100, 3, 40), // monitored
            ipv4::Addr::new(10, 100, 7, 10), // internal, other subnet
        ));
        t.conns.push(conn(
            ipv4::Addr::new(64, 4, 4, 4), // remote
            ipv4::Addr::new(10, 100, 3, 41),
        ));
        t.conns.push(conn(
            ipv4::Addr::new(10, 100, 3, 40),
            ipv4::Addr::new(239, 1, 1, 1), // multicast: not a host
        ));
        let s = dataset_summary("D0", &[t], 1500);
        assert_eq!(s.monitored_hosts, 2);
        assert_eq!(s.internal_hosts, 3);
        assert_eq!(s.remote_hosts, 1);
        assert_eq!(s.packets, 100);
        assert_eq!(s.subnets, 1);
    }

    #[test]
    fn table_renders_all_datasets() {
        let s = DatasetSummary {
            name: "D0".into(),
            traces: 22,
            trace_secs: 600,
            subnets: 22,
            passes: 1,
            packets: 17_800_000,
            snaplen: 1500,
            monitored_hosts: 2531,
            internal_hosts: 4767,
            remote_hosts: 4342,
        };
        let t = table1(&[s]);
        let out = t.render();
        assert!(out.contains("10 min"));
        assert!(out.contains("17.8M"));
        assert!(out.contains("2531"));
    }
}
