//! §6 network load: utilization distributions (Figure 9) and TCP
//! retransmission rates (Figure 10).

use super::DatasetTraces;
use crate::report::Figure;
use crate::stats::Ecdf;

/// Per-trace utilization metrics (Mbps).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceUtilization {
    /// Peak over 1-second windows.
    pub peak_1s: f64,
    /// Peak over 10-second windows.
    pub peak_10s: f64,
    /// Peak over 60-second windows.
    pub peak_60s: f64,
    /// Minimum 1-second utilization.
    pub min: f64,
    /// Average 1-second utilization.
    pub avg: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
}

fn mbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 * 8.0 / 1e6 / secs
}

/// Compute one trace's utilization metrics from its 1-second byte bins.
pub fn trace_utilization(bins: &[u64]) -> TraceUtilization {
    if bins.is_empty() {
        return TraceUtilization::default();
    }
    let window_peak = |w: usize| -> f64 {
        bins.chunks(w)
            .map(|c| mbps(c.iter().sum::<u64>(), c.len() as f64))
            .fold(0.0, f64::max)
    };
    let rates: Vec<f64> = bins.iter().map(|&b| mbps(b, 1.0)).collect();
    let e = Ecdf::new(rates.clone());
    TraceUtilization {
        peak_1s: window_peak(1),
        peak_10s: window_peak(10),
        peak_60s: window_peak(60),
        min: e.quantile(0.0).unwrap_or(0.0),
        avg: e.mean().unwrap_or(0.0),
        p25: e.quantile(0.25).unwrap_or(0.0),
        median: e.median().unwrap_or(0.0),
        p75: e.quantile(0.75).unwrap_or(0.0),
    }
}

/// Figure 9 data: distributions *across traces* of the per-trace metrics.
#[derive(Debug, Clone, Default)]
pub struct UtilizationStudy {
    /// Per-trace metrics.
    pub per_trace: Vec<TraceUtilization>,
}

/// Compute Figure 9 for a dataset.
pub fn utilization(traces: &DatasetTraces) -> UtilizationStudy {
    UtilizationStudy {
        per_trace: traces
            .iter()
            .map(|t| trace_utilization(&t.bytes_per_second))
            .collect(),
    }
}

impl UtilizationStudy {
    /// Render Figure 9(a): CDFs of peak utilization at 3 timescales.
    pub fn figure9a(&self) -> Figure {
        let mut f = Figure::new("Figure 9(a): Peak utilization (D-set)", "Mbps");
        f.series(
            "1 second",
            Ecdf::new(self.per_trace.iter().map(|t| t.peak_1s).collect()),
        );
        f.series(
            "10 seconds",
            Ecdf::new(self.per_trace.iter().map(|t| t.peak_10s).collect()),
        );
        f.series(
            "60 seconds",
            Ecdf::new(self.per_trace.iter().map(|t| t.peak_60s).collect()),
        );
        f
    }

    /// Render Figure 9(b): CDFs of per-second summary statistics.
    pub fn figure9b(&self) -> Figure {
        let mut f = Figure::new("Figure 9(b): Utilization (1s interval stats)", "Mbps");
        let series: [(&str, fn(&TraceUtilization) -> f64); 6] = [
            ("Minimum", |t| t.min),
            ("Maximum", |t| t.peak_1s),
            ("Average", |t| t.avg),
            ("25th perc.", |t| t.p25),
            ("Median", |t| t.median),
            ("75th perc.", |t| t.p75),
        ];
        for (label, get) in series {
            f.series(label, Ecdf::new(self.per_trace.iter().map(get).collect()));
        }
        f
    }
}

/// Figure 10: per-trace retransmission rates (%), internal and WAN, for
/// traces with at least `min_packets` data packets in the class.
pub fn retx_rates(traces: &DatasetTraces, min_packets: u64) -> (Vec<f64>, Vec<f64>) {
    let mut ent = Vec::new();
    let mut wan = Vec::new();
    for t in traces {
        if t.retx_ent.0 >= min_packets {
            ent.push(t.retx_ent.1 as f64 / t.retx_ent.0 as f64 * 100.0);
        }
        if t.retx_wan.0 >= min_packets {
            wan.push(t.retx_wan.1 as f64 / t.retx_wan.0 as f64 * 100.0);
        }
    }
    (ent, wan)
}

/// Render Figure 10 as CDFs of per-trace rates.
pub fn figure10(rows: &[(&str, (Vec<f64>, Vec<f64>))]) -> Figure {
    let mut f = Figure::new("Figure 10: TCP retransmission rate per trace", "% retransmitted");
    for (name, (ent, wan)) in rows {
        f.series(format!("ENT:{name}"), Ecdf::new(ent.clone()));
        f.series(format!("WAN:{name}"), Ecdf::new(wan.clone()));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TraceAnalysis;

    #[test]
    fn peaks_shrink_with_window() {
        // One saturated second in an otherwise idle minute.
        let mut bins = vec![0u64; 60];
        bins[30] = 12_500_000; // 100 Mbps for 1 s
        let u = trace_utilization(&bins);
        assert!((u.peak_1s - 100.0).abs() < 1e-9);
        assert!((u.peak_10s - 10.0).abs() < 1e-9);
        assert!((u.peak_60s - 100.0 / 60.0).abs() < 1e-6);
        assert_eq!(u.min, 0.0);
        assert!(u.avg < u.peak_1s / 10.0);
    }

    #[test]
    fn typical_usage_orders_below_peak() {
        // The paper's point: typical 1-2 orders below peak, 2-3 below
        // capacity.
        let bins: Vec<u64> = (0..3_600)
            .map(|i| if i % 600 == 0 { 6_000_000 } else { 25_000 })
            .collect();
        let u = trace_utilization(&bins);
        assert!(u.peak_1s / u.median >= 10.0);
        assert!(u.peak_1s <= 100.0);
        assert!(u.median < 1.0);
    }

    #[test]
    fn retx_rates_respect_threshold() {
        let t1 = TraceAnalysis {
            retx_ent: (10_000, 50),
            retx_wan: (500, 25), // below threshold
            ..Default::default()
        };
        let (ent, wan) = retx_rates(&[t1], 1_000);
        assert_eq!(ent, vec![0.5]);
        assert!(wan.is_empty());
        let f = figure10(&[("all", (ent, wan))]);
        assert!(f.render().contains("ENT:all"));
    }

    #[test]
    fn figure9_renders() {
        let t = TraceAnalysis {
            bytes_per_second: vec![1_000; 600],
            ..Default::default()
        };
        let s = utilization(&[t]);
        assert!(s.figure9a().render().contains("10 seconds"));
        assert!(s.figure9b().render().contains("75th perc."));
    }
}
