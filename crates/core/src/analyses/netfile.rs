//! §5.2.2 network-file-system analyses: sizes (Table 12), request
//! breakdowns (Tables 13–14), requests per host-pair (Figure 7),
//! request/reply sizes (Figure 8), plus keep-alive, transport-mix and
//! heavy-hitter findings.

use super::DatasetTraces;
use crate::report::{fmt_bytes, Figure, Table};
use crate::stats::{pct, Ecdf};
use ent_proto::nfs::NfsOp;
use ent_proto::ncp::NcpOp;
use ent_proto::AppProtocol;
use std::collections::HashMap;

/// Table 12: NFS/NCP connections and bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetFileSizes {
    /// NFS flows ("connections" including UDP flows, as the paper).
    pub nfs_conns: u64,
    /// NFS payload bytes.
    pub nfs_bytes: u64,
    /// NCP connections.
    pub ncp_conns: u64,
    /// NCP payload bytes.
    pub ncp_bytes: u64,
}

/// Compute Table 12.
pub fn netfile_sizes(traces: &DatasetTraces) -> NetFileSizes {
    let mut s = NetFileSizes::default();
    for t in traces {
        for c in &t.conns {
            match c.app {
                Some(AppProtocol::Nfs) => {
                    s.nfs_conns += 1;
                    s.nfs_bytes += c.payload_bytes();
                }
                Some(AppProtocol::Ncp) => {
                    s.ncp_conns += 1;
                    s.ncp_bytes += c.payload_bytes();
                }
                _ => {}
            }
        }
    }
    s
}

/// Render Table 12.
pub fn table12(rows: &[(&str, NetFileSizes)]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/conns"));
        headers.push(format!("{n}/bytes"));
    }
    let mut t = Table::new(
        "Table 12: NFS/NCP size",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    type Get = fn(&NetFileSizes) -> u64;
    let rows_spec: [(&str, Get, Get); 2] = [
        ("NFS", |s| s.nfs_conns, |s| s.nfs_bytes),
        ("NCP", |s| s.ncp_conns, |s| s.ncp_bytes),
    ];
    for (label, conns, bytes) in rows_spec {
        let mut row = vec![label.to_string()];
        for (_, s) in rows {
            row.push(conns(s).to_string());
            row.push(fmt_bytes(bytes(s)));
        }
        t.row(row);
    }
    t
}

/// A request-type breakdown: (label, request %, data %).
pub type OpBreakdown = Vec<(String, f64, f64)>;

/// Table 13: NFS request breakdown. "Data" counts request+reply bytes.
pub fn nfs_breakdown(traces: &DatasetTraces) -> (u64, u64, OpBreakdown) {
    let mut req: HashMap<NfsOp, u64> = HashMap::new();
    let mut bytes: HashMap<NfsOp, u64> = HashMap::new();
    let (mut tr, mut tb) = (0u64, 0u64);
    for t in traces {
        for r in &t.nfs {
            let b = (r.request_bytes + r.reply_bytes) as u64;
            *req.entry(r.op).or_default() += 1;
            *bytes.entry(r.op).or_default() += b;
            tr += 1;
            tb += b;
        }
    }
    let order = [
        NfsOp::Read,
        NfsOp::Write,
        NfsOp::GetAttr,
        NfsOp::LookUp,
        NfsOp::Access,
        NfsOp::Other,
    ];
    let rows = order
        .iter()
        .map(|o| {
            (
                o.label().to_string(),
                pct(req.get(o).copied().unwrap_or(0), tr),
                pct(bytes.get(o).copied().unwrap_or(0), tb),
            )
        })
        .collect();
    (tr, tb, rows)
}

/// Table 14: NCP request breakdown.
pub fn ncp_breakdown(traces: &DatasetTraces) -> (u64, u64, OpBreakdown) {
    let mut req: HashMap<NcpOp, u64> = HashMap::new();
    let mut bytes: HashMap<NcpOp, u64> = HashMap::new();
    let (mut tr, mut tb) = (0u64, 0u64);
    for t in traces {
        for r in &t.ncp {
            let b = (r.request_bytes + r.reply_bytes) as u64;
            *req.entry(r.op).or_default() += 1;
            *bytes.entry(r.op).or_default() += b;
            tr += 1;
            tb += b;
        }
    }
    let order = [
        NcpOp::Read,
        NcpOp::Write,
        NcpOp::FileDirInfo,
        NcpOp::FileOpenClose,
        NcpOp::FileSize,
        NcpOp::FileSearch,
        NcpOp::DirectoryService,
        NcpOp::Other,
    ];
    let rows = order
        .iter()
        .map(|o| {
            (
                o.label().to_string(),
                pct(req.get(o).copied().unwrap_or(0), tr),
                pct(bytes.get(o).copied().unwrap_or(0), tb),
            )
        })
        .collect();
    (tr, tb, rows)
}

/// Render Tables 13/14 (same layout).
pub fn op_table(title: &str, rows: &[(&str, (u64, u64, OpBreakdown))]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/req"));
        headers.push(format!("{n}/data"));
    }
    let mut t = Table::new(title, &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut total = vec!["Total".to_string()];
    for (_, (tr, tb, _)) in rows {
        total.push(tr.to_string());
        total.push(fmt_bytes(*tb));
    }
    t.row(total);
    let n_ops = rows.first().map(|(_, (_, _, b))| b.len()).unwrap_or(0);
    for i in 0..n_ops {
        let label = rows
            .first()
            .and_then(|(_, (_, _, b))| b.get(i))
            .map(|op| op.0.clone())
            .unwrap_or_default();
        let mut row = vec![label];
        for (_, (_, _, b)) in rows {
            let Some(op) = b.get(i) else {
                continue;
            };
            row.push(format!("{:.0}%", op.1));
            row.push(format!("{:.0}%", op.2));
        }
        t.row(row);
    }
    t
}

/// Figure 7: requests per host-pair; Figure 8: request/reply sizes.
#[derive(Debug, Clone, Default)]
pub struct NetFileDistributions {
    /// NFS requests per host-pair.
    pub nfs_reqs_per_pair: Ecdf,
    /// NCP requests per host-pair.
    pub ncp_reqs_per_pair: Ecdf,
    /// NFS request sizes.
    pub nfs_req_sizes: Ecdf,
    /// NFS reply sizes.
    pub nfs_reply_sizes: Ecdf,
    /// NCP request sizes.
    pub ncp_req_sizes: Ecdf,
    /// NCP reply sizes.
    pub ncp_reply_sizes: Ecdf,
}

/// Compute Figures 7–8.
pub fn netfile_distributions(traces: &DatasetTraces) -> NetFileDistributions {
    let mut nfs_pairs: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ncp_pairs: HashMap<(u32, u32), u64> = HashMap::new();
    let (mut nfs_req, mut nfs_rep, mut ncp_req, mut ncp_rep) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for t in traces {
        for r in &t.nfs {
            *nfs_pairs.entry((r.pair.0 .0, r.pair.1 .0)).or_default() += 1;
            nfs_req.push(r.request_bytes as f64);
            if r.reply_bytes > 0 {
                nfs_rep.push(r.reply_bytes as f64);
            }
        }
        for r in &t.ncp {
            *ncp_pairs.entry((r.pair.0 .0, r.pair.1 .0)).or_default() += 1;
            ncp_req.push(r.request_bytes as f64);
            if r.reply_bytes > 0 {
                ncp_rep.push(r.reply_bytes as f64);
            }
        }
    }
    NetFileDistributions {
        nfs_reqs_per_pair: Ecdf::new(nfs_pairs.values().map(|&v| v as f64).collect()),
        ncp_reqs_per_pair: Ecdf::new(ncp_pairs.values().map(|&v| v as f64).collect()),
        nfs_req_sizes: Ecdf::new(nfs_req),
        nfs_reply_sizes: Ecdf::new(nfs_rep),
        ncp_req_sizes: Ecdf::new(ncp_req),
        ncp_reply_sizes: Ecdf::new(ncp_rep),
    }
}

/// Render Figures 7 and 8.
pub fn figures78(rows: &[(&str, NetFileDistributions)]) -> (Figure, Figure) {
    let mut f7 = Figure::new("Figure 7: requests per host-pair", "requests");
    let mut f8 = Figure::new("Figure 8: request/reply sizes", "bytes");
    for (name, d) in rows {
        f7.series(format!("nfs:{name}"), d.nfs_reqs_per_pair.clone());
        f7.series(format!("ncp:{name}"), d.ncp_reqs_per_pair.clone());
        f8.series(format!("nfs-req:{name}"), d.nfs_req_sizes.clone());
        f8.series(format!("nfs-rep:{name}"), d.nfs_reply_sizes.clone());
        f8.series(format!("ncp-req:{name}"), d.ncp_req_sizes.clone());
        f8.series(format!("ncp-rep:{name}"), d.ncp_reply_sizes.clone());
    }
    (f7, f8)
}

/// §5.2.2 text findings.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetFileFindings {
    /// Keep-alive-only share of NCP connections (%) — paper: 40–80%.
    pub ncp_keepalive_only_pct: f64,
    /// UDP share of NFS payload bytes (%).
    pub nfs_udp_bytes_pct: f64,
    /// Share of NFS host-pairs using UDP (%).
    pub nfs_udp_pairs_pct: f64,
    /// Top-3 host-pairs' share of NFS bytes (%) — paper: 89–94%.
    pub nfs_top3_bytes_pct: f64,
    /// Top-3 host-pairs' share of NCP bytes (%) — paper: 35–62%.
    pub ncp_top3_bytes_pct: f64,
    /// NFS request success (%).
    pub nfs_request_success_pct: f64,
    /// NCP request success (%).
    pub ncp_request_success_pct: f64,
    /// NCP connection success (%).
    pub ncp_conn_success_pct: f64,
}

/// Compute the §5.2.2 findings.
pub fn netfile_findings(traces: &DatasetTraces) -> NetFileFindings {
    let (mut ncp_ka, mut ncp_conns, mut ncp_ok_conns, mut ncp_tcp_conns) = (0u64, 0u64, 0u64, 0u64);
    let (mut nfs_udp_b, mut nfs_b) = (0u64, 0u64);
    let mut nfs_pair_bytes: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ncp_pair_bytes: HashMap<(u32, u32), u64> = HashMap::new();
    let mut nfs_pair_udp: HashMap<(u32, u32), bool> = HashMap::new();
    let (mut nfs_ok, mut nfs_tot, mut ncp_rok, mut ncp_rtot) = (0u64, 0u64, 0u64, 0u64);
    for t in traces {
        for c in &t.conns {
            match c.app {
                Some(AppProtocol::Ncp) => {
                    if c.summary.tcp_state != ent_flow::TcpState::RejectedState {
                        ncp_conns += 1;
                        ncp_ka += u64::from(c.summary.keepalive_only());
                    }
                    ncp_tcp_conns += 1;
                    ncp_ok_conns += u64::from(c.successful());
                    let hp = c.summary.key.host_pair();
                    *ncp_pair_bytes.entry((hp.0 .0, hp.1 .0)).or_default() +=
                        c.payload_bytes();
                }
                Some(AppProtocol::Nfs) => {
                    let b = c.payload_bytes();
                    nfs_b += b;
                    let hp = c.summary.key.host_pair();
                    *nfs_pair_bytes.entry((hp.0 .0, hp.1 .0)).or_default() += b;
                    if c.proto() == ent_flow::Proto::Udp {
                        nfs_udp_b += b;
                        nfs_pair_udp.insert((hp.0 .0, hp.1 .0), true);
                    } else {
                        nfs_pair_udp.entry((hp.0 .0, hp.1 .0)).or_insert(false);
                    }
                }
                _ => {}
            }
        }
        for r in &t.nfs {
            nfs_tot += 1;
            nfs_ok += u64::from(r.ok);
        }
        for r in &t.ncp {
            ncp_rtot += 1;
            ncp_rok += u64::from(r.ok);
        }
    }
    let top3 = |m: &HashMap<(u32, u32), u64>| {
        let total: u64 = m.values().sum();
        let mut v: Vec<u64> = m.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        pct(v.iter().take(3).sum::<u64>(), total)
    };
    NetFileFindings {
        ncp_keepalive_only_pct: pct(ncp_ka, ncp_conns),
        nfs_udp_bytes_pct: pct(nfs_udp_b, nfs_b),
        nfs_udp_pairs_pct: pct(
            nfs_pair_udp.values().filter(|&&u| u).count() as u64,
            nfs_pair_udp.len() as u64,
        ),
        nfs_top3_bytes_pct: top3(&nfs_pair_bytes),
        ncp_top3_bytes_pct: top3(&ncp_pair_bytes),
        nfs_request_success_pct: pct(nfs_ok, nfs_tot),
        ncp_request_success_pct: pct(ncp_rok, ncp_rtot),
        ncp_conn_success_pct: pct(ncp_ok_conns, ncp_tcp_conns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{NcpRecord, NfsRecord, TraceAnalysis};
    use ent_wire::ipv4;

    fn pair(a: u8) -> (ipv4::Addr, ipv4::Addr) {
        (ipv4::Addr::new(10, 100, 1, a), ipv4::Addr::new(10, 100, 3, 10))
    }

    #[test]
    fn breakdowns_and_distributions() {
        let mut t = TraceAnalysis::default();
        for i in 0..70 {
            t.nfs.push(NfsRecord {
                op: NfsOp::Read,
                request_bytes: 100,
                reply_bytes: 8_192,
                ok: true,
                pair: pair(1),
                udp: true,
            });
            let _ = i;
        }
        for _ in 0..30 {
            t.nfs.push(NfsRecord {
                op: NfsOp::GetAttr,
                request_bytes: 100,
                reply_bytes: 120,
                ok: true,
                pair: pair(2),
                udp: true,
            });
        }
        let (tr, _tb, rows) = nfs_breakdown(&[t.clone_nfs()]);
        assert_eq!(tr, 100);
        let read = rows.iter().find(|r| r.0 == "Read").unwrap();
        assert_eq!(read.1, 70.0);
        assert!(read.2 > 95.0, "read bytes dominate");
        let d = netfile_distributions(&[t]);
        assert_eq!(d.nfs_reqs_per_pair.n(), 2);
        assert_eq!(d.nfs_reqs_per_pair.quantile(1.0), Some(70.0));
        // Dual-mode sizes visible: p25 small, p90 8KB-ish.
        assert!(d.nfs_reply_sizes.quantile(0.9).unwrap() > 8_000.0);
        assert!(d.nfs_req_sizes.quantile(0.5).unwrap() < 200.0);
        let (f7, f8) = figures78(&[("D0", d)]);
        assert!(f7.render().contains("Figure 7"));
        assert!(f7.render().contains("nfs:D0"));
        assert!(f8.render().contains("Figure 8"));
        assert!(f8.render().contains("ncp-rep:D0"));
    }

    #[test]
    fn ncp_breakdown_table() {
        let mut t = TraceAnalysis::default();
        for op in [NcpOp::Read, NcpOp::Read, NcpOp::FileDirInfo, NcpOp::Write] {
            t.ncp.push(NcpRecord {
                op,
                request_bytes: 14,
                reply_bytes: 260,
                ok: op != NcpOp::FileDirInfo,
                pair: pair(1),
            });
        }
        let (tr, _, rows) = ncp_breakdown(&[t.clone_ncp()]);
        assert_eq!(tr, 4);
        assert_eq!(rows.iter().find(|r| r.0 == "Read").unwrap().1, 50.0);
        let f = netfile_findings(&[t]);
        assert_eq!(f.ncp_request_success_pct, 75.0);
        let table = op_table("Table 14: NCP requests", &[("D0", (tr, 0, rows))]);
        assert!(table.render().contains("Directory Service"));
    }

    impl TraceAnalysis {
        fn clone_nfs(&self) -> TraceAnalysis {
            TraceAnalysis {
                nfs: self.nfs.clone(),
                ..Default::default()
            }
        }
        fn clone_ncp(&self) -> TraceAnalysis {
            TraceAnalysis {
                ncp: self.ncp.clone(),
                ..Default::default()
            }
        }
    }
}
