//! Figure 1: application-category mix — payload bytes and connections per
//! category, split enterprise-internal vs WAN-crossing; plus the
//! multicast shares the paper calls out in §3.

use super::DatasetTraces;
use crate::report::Table;
use crate::stats::pct;
use ent_proto::{AppProtocol, Category};

/// One category's share of the dataset's unicast traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryShare {
    /// Enterprise-internal byte share (%).
    pub bytes_ent_pct: f64,
    /// WAN-crossing byte share (%).
    pub bytes_wan_pct: f64,
    /// Enterprise-internal connection share (%).
    pub conns_ent_pct: f64,
    /// WAN-crossing connection share (%).
    pub conns_wan_pct: f64,
}

impl CategoryShare {
    /// Total byte share (%).
    pub fn bytes_pct(&self) -> f64 {
        self.bytes_ent_pct + self.bytes_wan_pct
    }

    /// Total connection share (%).
    pub fn conns_pct(&self) -> f64 {
        self.conns_ent_pct + self.conns_wan_pct
    }
}

/// Figure 1 for one dataset.
#[derive(Debug, Clone, Default)]
pub struct AppMix {
    /// Per-category shares, in [`Category::ALL`] order.
    pub shares: Vec<(Category, CategoryShare)>,
    /// Multicast streaming bytes as % of *all* payload bytes (§3: 5–10%).
    pub multicast_streaming_bytes_pct: f64,
    /// Multicast name+mgnt (SrvLoc, SAP) connections as % of all
    /// connections (§3: each 5–10%).
    pub multicast_name_mgnt_conns_pct: f64,
}

/// Compute Figure 1's data for one dataset.
pub fn appmix(traces: &DatasetTraces) -> AppMix {
    use std::collections::HashMap;
    let mut bytes_ent: HashMap<Category, u64> = HashMap::new();
    let mut bytes_wan: HashMap<Category, u64> = HashMap::new();
    let mut conns_ent: HashMap<Category, u64> = HashMap::new();
    let mut conns_wan: HashMap<Category, u64> = HashMap::new();
    let (mut ub, mut uc) = (0u64, 0u64); // unicast totals
    let (mut all_bytes, mut all_conns) = (0u64, 0u64);
    let mut mcast_stream_bytes = 0u64;
    let mut mcast_name_mgnt_conns = 0u64;
    for t in traces {
        for c in &t.conns {
            let b = c.payload_bytes();
            all_bytes += b;
            all_conns += 1;
            if c.summary.multicast {
                if c.category == Category::Streaming {
                    mcast_stream_bytes += b;
                }
                if matches!(c.app, Some(AppProtocol::SrvLoc | AppProtocol::Sap)) {
                    mcast_name_mgnt_conns += 1;
                }
                continue; // Figure 1 plots unicast only
            }
            ub += b;
            uc += 1;
            if c.is_enterprise_only() {
                *bytes_ent.entry(c.category).or_default() += b;
                *conns_ent.entry(c.category).or_default() += 1;
            } else {
                *bytes_wan.entry(c.category).or_default() += b;
                *conns_wan.entry(c.category).or_default() += 1;
            }
        }
    }
    let shares = Category::ALL
        .iter()
        .map(|&cat| {
            (
                cat,
                CategoryShare {
                    bytes_ent_pct: pct(bytes_ent.get(&cat).copied().unwrap_or(0), ub),
                    bytes_wan_pct: pct(bytes_wan.get(&cat).copied().unwrap_or(0), ub),
                    conns_ent_pct: pct(conns_ent.get(&cat).copied().unwrap_or(0), uc),
                    conns_wan_pct: pct(conns_wan.get(&cat).copied().unwrap_or(0), uc),
                },
            )
        })
        .collect();
    AppMix {
        shares,
        multicast_streaming_bytes_pct: pct(mcast_stream_bytes, all_bytes),
        multicast_name_mgnt_conns_pct: pct(mcast_name_mgnt_conns, all_conns),
    }
}

/// Packet-share of each category (the paper notes it omitted this plot
/// but that interactive traffic's packet share is about twice its byte
/// share — small keystroke packets).
pub fn packet_shares(traces: &DatasetTraces) -> Vec<(Category, f64)> {
    use std::collections::HashMap;
    let mut pkts: HashMap<Category, u64> = HashMap::new();
    let mut total = 0u64;
    for t in traces {
        for c in &t.conns {
            if c.summary.multicast {
                continue;
            }
            let n = c.summary.total_packets();
            *pkts.entry(c.category).or_default() += n;
            total += n;
        }
    }
    Category::ALL
        .iter()
        .map(|&cat| (cat, pct(pkts.get(&cat).copied().unwrap_or(0), total)))
        .collect()
}

/// Render Figure 1 as two tables (bytes and connections), one column pair
/// (ent, wan) per dataset.
pub fn figure1(rows: &[(&str, AppMix)], bytes: bool) -> Table {
    let mut headers = vec!["category".to_string()];
    for (name, _) in rows {
        headers.push(format!("{name}/ent"));
        headers.push(format!("{name}/wan"));
    }
    let title = if bytes {
        "Figure 1(a): % payload bytes per application category"
    } else {
        "Figure 1(b): % connections per application category"
    };
    let mut t = Table::new(title, &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for (i, &cat) in Category::ALL.iter().enumerate() {
        let mut row = vec![cat.label().to_string()];
        for (_, mix) in rows {
            let Some(s) = mix.shares.get(i).map(|x| x.1) else {
                continue;
            };
            if bytes {
                row.push(format!("{:.1}", s.bytes_ent_pct));
                row.push(format!("{:.1}", s.bytes_wan_pct));
            } else {
                row.push(format!("{:.1}", s.conns_ent_pct));
                row.push(format!("{:.1}", s.conns_wan_pct));
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_wire::{ipv4, Timestamp};

    fn conn(cat: Category, app: Option<AppProtocol>, bytes: u64, wan: bool, mcast: bool) -> ConnRecord {
        let resp = if mcast {
            ipv4::Addr::new(239, 1, 1, 1)
        } else if wan {
            ipv4::Addr::new(64, 0, 0, 1)
        } else {
            ipv4::Addr::new(10, 100, 2, 2)
        };
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Udp,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, 1), 1),
                    resp: Endpoint::new(resp, 2),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    payload_bytes: bytes,
                    ..Default::default()
                },
                resp: DirStats::default(),
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::NotTcp,
                multicast: mcast,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app,
            category: cat,
        }
    }

    #[test]
    fn shares_split_by_locality_and_multicast_separated() {
        let mut t = TraceAnalysis::default();
        t.conns.push(conn(Category::Web, Some(AppProtocol::Http), 600, true, false));
        t.conns.push(conn(Category::Web, Some(AppProtocol::Http), 200, false, false));
        t.conns.push(conn(Category::Name, Some(AppProtocol::Dns), 200, false, false));
        t.conns.push(conn(Category::Streaming, Some(AppProtocol::IpVideo), 1_000, false, true));
        t.conns.push(conn(Category::Name, Some(AppProtocol::SrvLoc), 50, false, true));
        let mix = appmix(&[t]);
        let web = mix.shares.iter().find(|(c, _)| *c == Category::Web).unwrap().1;
        assert!((web.bytes_wan_pct - 60.0).abs() < 1e-9);
        assert!((web.bytes_ent_pct - 20.0).abs() < 1e-9);
        assert!((web.conns_pct() - 200.0 / 3.0).abs() < 1e-6);
        // Multicast excluded from unicast shares but counted separately.
        assert!((mix.multicast_streaming_bytes_pct - 1_000.0 / 2_050.0 * 100.0).abs() < 1e-6);
        assert!((mix.multicast_name_mgnt_conns_pct - 20.0).abs() < 1e-9);
        let table = figure1(&[("D0", mix)], true);
        assert!(table.render().contains("net-file"));
    }

    #[test]
    fn packet_shares_reflect_small_packet_categories() {
        let mut t = TraceAnalysis::default();
        // Interactive: many packets, few bytes. Bulk: few packets, many bytes.
        let mut ssh = conn(Category::Interactive, Some(AppProtocol::Ssh), 5_000, false, false);
        ssh.summary.orig.packets = 400;
        t.conns.push(ssh);
        let mut bulk = conn(Category::Bulk, Some(AppProtocol::Ftp), 1_000_000, false, false);
        bulk.summary.orig.packets = 100;
        t.conns.push(bulk);
        let shares = packet_shares(&[t.clone()]);
        let mix = appmix(&[t]);
        let pkt = |c: Category| shares.iter().find(|(k, _)| *k == c).unwrap().1;
        let byte = |c: Category| {
            mix.shares
                .iter()
                .find(|(k, _)| *k == c)
                .unwrap()
                .1
                .bytes_pct()
        };
        assert!(pkt(Category::Interactive) > byte(Category::Interactive) * 2.0);
        assert!(byte(Category::Bulk) > pkt(Category::Bulk));
    }
}
