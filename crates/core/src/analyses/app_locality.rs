//! Per-application locality — the drill-down the paper's §4 defers:
//! "future work on assessing particular applications and examining
//! locality within the enterprise is needed." For each application
//! category: how many distinct peers a client touches, and what share of
//! the category's flows stay inside the enterprise.

use super::DatasetTraces;
use crate::report::Table;
use crate::stats::{pct, Ecdf};
use ent_proto::Category;
use std::collections::{HashMap, HashSet};

/// Locality profile of one application category.
#[derive(Debug, Clone, Default)]
pub struct CategoryLocality {
    /// Flows staying inside the enterprise (%).
    pub enterprise_pct: f64,
    /// Median distinct servers per client.
    pub median_fanout: Option<f64>,
    /// 99th-percentile fan-out (tail).
    pub p99_fanout: Option<f64>,
    /// Flows observed.
    pub flows: u64,
}

/// Compute per-category locality.
pub fn app_locality(traces: &DatasetTraces) -> Vec<(Category, CategoryLocality)> {
    let mut ent: HashMap<Category, u64> = HashMap::new();
    let mut total: HashMap<Category, u64> = HashMap::new();
    let mut fanout: HashMap<Category, HashMap<u32, HashSet<u32>>> = HashMap::new();
    for t in traces {
        for c in &t.conns {
            if c.summary.multicast {
                continue;
            }
            *total.entry(c.category).or_default() += 1;
            if c.is_enterprise_only() {
                *ent.entry(c.category).or_default() += 1;
            }
            fanout
                .entry(c.category)
                .or_default()
                .entry(c.orig_addr().0)
                .or_default()
                .insert(c.resp_addr().0);
        }
    }
    Category::ALL
        .iter()
        .map(|&cat| {
            let flows = total.get(&cat).copied().unwrap_or(0);
            let e = Ecdf::new(
                fanout
                    .get(&cat)
                    .map(|m| m.values().map(|s| s.len() as f64).collect())
                    .unwrap_or_default(),
            );
            (
                cat,
                CategoryLocality {
                    enterprise_pct: pct(ent.get(&cat).copied().unwrap_or(0), flows),
                    median_fanout: e.median(),
                    p99_fanout: e.quantile(0.99),
                    flows,
                },
            )
        })
        .collect()
}

/// Render per-category locality across datasets.
pub fn app_locality_table(rows: &[(&str, Vec<(Category, CategoryLocality)>)]) -> Table {
    let mut headers = vec!["category".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/ent%"));
        headers.push(format!("{n}/fanout"));
    }
    let mut t = Table::new(
        "Per-application locality (future-work extension of paper sec. 4)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (i, &cat) in Category::ALL.iter().enumerate() {
        let mut row = vec![cat.label().to_string()];
        for (_, locs) in rows {
            let Some(l) = locs.get(i).map(|x| &x.1) else {
                row.push("-".into());
                row.push("-".into());
                continue;
            };
            if l.flows == 0 {
                row.push("-".into());
                row.push("-".into());
            } else {
                row.push(format!("{:.0}%", l.enterprise_pct));
                row.push(
                    l.median_fanout
                        .map(|m| format!("{m:.0}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_proto::AppProtocol;
    use ent_wire::{ipv4, Timestamp};

    fn conn(cat: Category, client_n: u8, server: ipv4::Addr) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, client_n), 40_000),
                    resp: Endpoint::new(server, 80),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    packets: 1,
                    ..Default::default()
                },
                resp: DirStats {
                    packets: 1,
                    ..Default::default()
                },
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: Some(AppProtocol::Http),
            category: cat,
        }
    }

    #[test]
    fn locality_profile_per_category() {
        let mut t = TraceAnalysis::default();
        // Web: one client, 4 external servers + 1 internal.
        for i in 0..4u8 {
            t.conns.push(conn(Category::Web, 30, ipv4::Addr::new(64, 0, 0, 1 + i)));
        }
        t.conns.push(conn(Category::Web, 30, ipv4::Addr::new(10, 100, 6, 10)));
        // Name: three clients each to the one internal DNS server.
        for i in 0..3u8 {
            t.conns.push(conn(Category::Name, 40 + i, ipv4::Addr::new(10, 100, 24, 10)));
        }
        let locs = app_locality(&[t]);
        let web = &locs.iter().find(|(c, _)| *c == Category::Web).unwrap().1;
        assert_eq!(web.flows, 5);
        assert!((web.enterprise_pct - 20.0).abs() < 1e-9);
        assert_eq!(web.median_fanout, Some(5.0));
        let name = &locs.iter().find(|(c, _)| *c == Category::Name).unwrap().1;
        assert_eq!(name.enterprise_pct, 100.0);
        assert_eq!(name.median_fanout, Some(1.0));
        let table = app_locality_table(&[("D0", locs)]);
        let out = table.render();
        assert!(out.contains("net-file"));
        assert!(out.contains("100%"));
    }
}
