//! §5.1.1 web analyses: automated clients (Table 6), content types
//! (Table 7), fan-out (Figure 3), reply sizes (Figure 4), connection
//! success rates and conditional-GET usage.

use super::{is_http_port, DatasetTraces};
use crate::records::is_internal;
use crate::report::{Figure, Table};
use crate::stats::{pct, Ecdf};
use ent_proto::http::{ClientKind, ContentClass};
use std::collections::{HashMap, HashSet};

/// Table 6: automated clients' share of internal HTTP traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AutomatedClients {
    /// Total internal requests.
    pub total_requests: u64,
    /// Total internal HTTP body bytes.
    pub total_bytes: u64,
    /// (client kind label, request %, data %).
    pub rows: Vec<(String, f64, f64)>,
    /// All automated clients combined: (request %, data %).
    pub all: (f64, f64),
}

/// Compute Table 6 over internal HTTP transactions.
pub fn automated_clients(traces: &DatasetTraces) -> AutomatedClients {
    let mut req: HashMap<ClientKind, u64> = HashMap::new();
    let mut data: HashMap<ClientKind, u64> = HashMap::new();
    let (mut total_req, mut total_data) = (0u64, 0u64);
    for t in traces {
        for h in t.http.iter().filter(|h| h.server_internal) {
            total_req += 1;
            let bytes = h.tx.response_body_len + h.tx.request_body_len;
            total_data += bytes;
            *req.entry(h.tx.client).or_default() += 1;
            *data.entry(h.tx.client).or_default() += bytes;
        }
    }
    let kinds = [
        (ClientKind::Scanner, "scan1"),
        (ClientKind::GoogleBot1, "google1"),
        (ClientKind::GoogleBot2, "google2"),
        (ClientKind::IFolder, "ifolder"),
    ];
    let mut rows = Vec::new();
    let (mut auto_req, mut auto_data) = (0u64, 0u64);
    for (kind, label) in kinds {
        let r = req.get(&kind).copied().unwrap_or(0);
        let d = data.get(&kind).copied().unwrap_or(0);
        rows.push((label.to_string(), pct(r, total_req), pct(d, total_data)));
    }
    for (kind, r) in &req {
        if kind.is_automated() {
            auto_req += r;
        }
    }
    for (kind, d) in &data {
        if kind.is_automated() {
            auto_data += d;
        }
    }
    AutomatedClients {
        total_requests: total_req,
        total_bytes: total_data,
        rows,
        all: (pct(auto_req, total_req), pct(auto_data, total_data)),
    }
}

/// Render Table 6 across datasets.
pub fn table6(rows: &[(&str, AutomatedClients)]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/req"));
        headers.push(format!("{n}/data"));
    }
    let mut t = Table::new(
        "Table 6: Automated clients' share of internal HTTP traffic",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut total_row = vec!["Total".to_string()];
    for (_, a) in rows {
        total_row.push(a.total_requests.to_string());
        total_row.push(crate::report::fmt_bytes(a.total_bytes));
    }
    t.row(total_row);
    for i in 0..4 {
        let label = rows
            .first()
            .and_then(|(_, a)| a.rows.get(i))
            .map(|r| r.0.clone())
            .unwrap_or_default();
        let mut row = vec![label];
        for (_, a) in rows {
            let Some(r) = a.rows.get(i) else {
                continue;
            };
            row.push(format!("{:.1}%", r.1));
            row.push(format!("{:.1}%", r.2));
        }
        t.row(row);
    }
    let mut all = vec!["All".to_string()];
    for (_, a) in rows {
        all.push(format!("{:.0}%", a.all.0));
        all.push(format!("{:.0}%", a.all.1));
    }
    t.row(all);
    t
}

/// §5.1.1 connection-level and request-level characteristics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WebCharacteristics {
    /// Connection success rate by host-pair, internal servers (%).
    pub success_ent_pct: f64,
    /// Connection success rate by host-pair, WAN servers (%).
    pub success_wan_pct: f64,
    /// Conditional-GET share of internal browser requests (%).
    pub conditional_ent_pct: f64,
    /// Conditional-GET share of WAN browser requests (%).
    pub conditional_wan_pct: f64,
    /// Conditional requests' share of internal data bytes (%).
    pub conditional_ent_bytes_pct: f64,
    /// Conditional requests' share of WAN data bytes (%).
    pub conditional_wan_bytes_pct: f64,
    /// GET share of requests (%).
    pub get_pct: f64,
    /// Requests answered successfully (2xx or 304) (%).
    pub request_success_pct: f64,
}

/// Compute the success/conditional characteristics. Automated clients are
/// excluded from request-level numbers, as in the paper.
pub fn web_characteristics(traces: &DatasetTraces) -> WebCharacteristics {
    // Host-pair success from connection records.
    let mut pair_ok: HashMap<(u32, u32, bool), bool> = HashMap::new();
    for t in traces {
        for c in &t.conns {
            if !is_http_port(c.summary.key.resp.port) || c.summary.key.proto != ent_flow::Proto::Tcp
            {
                continue;
            }
            let internal = is_internal(c.resp_addr());
            let pair = c.summary.key.host_pair();
            let e = pair_ok.entry((pair.0 .0, pair.1 .0, internal)).or_insert(false);
            *e = *e || c.successful();
        }
    }
    let rate = |internal: bool| {
        let total = pair_ok.keys().filter(|k| k.2 == internal).count() as u64;
        let ok = pair_ok
            .iter()
            .filter(|(k, v)| k.2 == internal && **v)
            .count() as u64;
        pct(ok, total)
    };
    // Request-level stats, browsers only.
    let (mut req_e, mut req_w, mut cond_e, mut cond_w) = (0u64, 0u64, 0u64, 0u64);
    let (mut bytes_e, mut bytes_w, mut cbytes_e, mut cbytes_w) = (0u64, 0u64, 0u64, 0u64);
    let (mut gets, mut reqs, mut ok_req) = (0u64, 0u64, 0u64);
    for t in traces {
        for h in &t.http {
            if h.tx.client.is_automated() {
                continue;
            }
            reqs += 1;
            if h.tx.method == "GET" {
                gets += 1;
            }
            if h.tx.is_successful() {
                ok_req += 1;
            }
            let bytes = h.tx.response_body_len;
            if h.server_internal {
                req_e += 1;
                bytes_e += bytes;
                if h.tx.conditional {
                    cond_e += 1;
                    cbytes_e += bytes;
                }
            } else {
                req_w += 1;
                bytes_w += bytes;
                if h.tx.conditional {
                    cond_w += 1;
                    cbytes_w += bytes;
                }
            }
        }
    }
    WebCharacteristics {
        success_ent_pct: rate(true),
        success_wan_pct: rate(false),
        conditional_ent_pct: pct(cond_e, req_e),
        conditional_wan_pct: pct(cond_w, req_w),
        conditional_ent_bytes_pct: pct(cbytes_e, bytes_e),
        conditional_wan_bytes_pct: pct(cbytes_w, bytes_w),
        get_pct: pct(gets, reqs),
        request_success_pct: pct(ok_req, reqs),
    }
}

/// Figure 3: per-client fan-out to HTTP servers (automated excluded).
pub fn http_fanout(traces: &DatasetTraces) -> (Ecdf, Ecdf) {
    let mut ent: HashMap<u32, HashSet<u32>> = HashMap::new();
    let mut wan: HashMap<u32, HashSet<u32>> = HashMap::new();
    for t in traces {
        for h in &t.http {
            if h.tx.client.is_automated() {
                continue;
            }
            let m = if h.server_internal { &mut ent } else { &mut wan };
            m.entry(h.client.0).or_default().insert(h.server.0);
        }
    }
    (
        Ecdf::new(ent.values().map(|s| s.len() as f64).collect()),
        Ecdf::new(wan.values().map(|s| s.len() as f64).collect()),
    )
}

/// Table 7: content-type breakdown, (requests %, bytes %) per class, for
/// internal and WAN servers. Counts successful GET bodies, as the paper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentTypes {
    /// text: (req% ent, req% wan, bytes% ent, bytes% wan)
    pub text: (f64, f64, f64, f64),
    /// image row.
    pub image: (f64, f64, f64, f64),
    /// application row.
    pub application: (f64, f64, f64, f64),
    /// other row.
    pub other: (f64, f64, f64, f64),
}

/// Compute Table 7.
pub fn content_types(traces: &DatasetTraces) -> ContentTypes {
    let mut req = [[0u64; 2]; 4]; // [class][ent/wan]
    let mut bytes = [[0u64; 2]; 4];
    for t in traces {
        for h in &t.http {
            if h.tx.client.is_automated() || !(200..300).contains(&h.tx.status) {
                continue;
            }
            let class = match h.tx.content {
                ContentClass::Text => 0,
                ContentClass::Image => 1,
                ContentClass::Application => 2,
                ContentClass::Other => 3,
                ContentClass::None => continue,
            };
            let loc = usize::from(!h.server_internal);
            if let Some(cell) = req.get_mut(class).and_then(|r| r.get_mut(loc)) {
                *cell += 1;
            }
            if let Some(cell) = bytes.get_mut(class).and_then(|r| r.get_mut(loc)) {
                *cell += h.tx.response_body_len;
            }
        }
    }
    let req_tot = [0usize, 1].map(|l| req.iter().map(|r| r.get(l).copied().unwrap_or(0)).sum::<u64>());
    let byte_tot = [0usize, 1].map(|l| bytes.iter().map(|r| r.get(l).copied().unwrap_or(0)).sum::<u64>());
    let row = |i: usize| {
        let r = req.get(i).copied().unwrap_or([0; 2]);
        let b = bytes.get(i).copied().unwrap_or([0; 2]);
        (
            pct(r[0], req_tot[0]),
            pct(r[1], req_tot[1]),
            pct(b[0], byte_tot[0]),
            pct(b[1], byte_tot[1]),
        )
    };
    ContentTypes {
        text: row(0),
        image: row(1),
        application: row(2),
        other: row(3),
    }
}

/// Render Table 7 (aggregated across the given datasets).
pub fn table7(ct: &ContentTypes) -> Table {
    let mut t = Table::new(
        "Table 7: HTTP reply content types (ent / wan)",
        &["", "req ent", "req wan", "bytes ent", "bytes wan"],
    );
    for (label, r) in [
        ("text", ct.text),
        ("image", ct.image),
        ("application", ct.application),
        ("Other", ct.other),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{:.0}%", r.0),
            format!("{:.0}%", r.1),
            format!("{:.0}%", r.2),
            format!("{:.0}%", r.3),
        ]);
    }
    t
}

/// Figure 4: HTTP reply body sizes (when present), ent vs wan.
pub fn reply_sizes(traces: &DatasetTraces) -> (Ecdf, Ecdf) {
    let mut ent = Vec::new();
    let mut wan = Vec::new();
    for t in traces {
        for h in &t.http {
            if h.tx.response_body_len == 0 {
                continue;
            }
            if h.server_internal {
                ent.push(h.tx.response_body_len as f64);
            } else {
                wan.push(h.tx.response_body_len as f64);
            }
        }
    }
    (Ecdf::new(ent), Ecdf::new(wan))
}

/// Render Figures 3 and 4 for a set of datasets.
pub fn figures34(rows: &[(&str, (Ecdf, Ecdf), (Ecdf, Ecdf))]) -> (Figure, Figure) {
    let mut f3 = Figure::new("Figure 3: HTTP fan-out", "servers per client");
    let mut f4 = Figure::new("Figure 4: HTTP reply size", "bytes");
    for (name, fanout, sizes) in rows {
        f3.series(format!("ent:{name}"), fanout.0.clone());
        f3.series(format!("wan:{name}"), fanout.1.clone());
        f4.series(format!("ent:{name}"), sizes.0.clone());
        f4.series(format!("wan:{name}"), sizes.1.clone());
    }
    (f3, f4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{HttpRecord, TraceAnalysis};
    use ent_proto::http::HttpTransaction;
    use ent_wire::ipv4;

    fn tx(client: ClientKind, status: u16, len: u64, cond: bool) -> HttpTransaction {
        HttpTransaction {
            method: "GET".into(),
            uri: "/".into(),
            host: None,
            client,
            conditional: cond,
            request_body_len: 0,
            status,
            content: ContentClass::Text,
            response_body_len: len,
        }
    }

    fn rec(client_n: u8, server_internal: bool, tx: HttpTransaction) -> HttpRecord {
        HttpRecord {
            tx,
            client: ipv4::Addr::new(10, 100, 1, client_n),
            server: if server_internal {
                ipv4::Addr::new(10, 100, 6, 10)
            } else {
                ipv4::Addr::new(64, 0, 0, 1)
            },
            server_internal,
        }
    }

    #[test]
    fn automated_share() {
        let mut t = TraceAnalysis::default();
        t.http.push(rec(1, true, tx(ClientKind::Scanner, 404, 100, false)));
        t.http.push(rec(2, true, tx(ClientKind::GoogleBot2, 200, 900, false)));
        t.http.push(rec(3, true, tx(ClientKind::Browser, 200, 1_000, false)));
        t.http.push(rec(3, false, tx(ClientKind::Browser, 200, 5_000, false)));
        let a = automated_clients(&[t]);
        assert_eq!(a.total_requests, 3); // internal only
        assert!((a.all.0 - 2.0 / 3.0 * 100.0).abs() < 1e-6);
        assert!((a.all.1 - 1_000.0 / 2_000.0 * 100.0).abs() < 1e-6);
        assert!(table6(&[("D0", a)]).render().contains("google2"));
    }

    #[test]
    fn conditional_get_split() {
        let mut t = TraceAnalysis::default();
        t.http.push(rec(1, true, tx(ClientKind::Browser, 304, 0, true)));
        t.http.push(rec(1, true, tx(ClientKind::Browser, 200, 100, false)));
        t.http.push(rec(1, false, tx(ClientKind::Browser, 200, 100, false)));
        // Scanner ignored.
        t.http.push(rec(2, true, tx(ClientKind::Scanner, 404, 0, false)));
        let w = web_characteristics(&[t]);
        assert!((w.conditional_ent_pct - 50.0).abs() < 1e-9);
        assert_eq!(w.conditional_wan_pct, 0.0);
        assert_eq!(w.get_pct, 100.0);
        assert_eq!(w.request_success_pct, 100.0);
    }

    #[test]
    fn fanout_excludes_automated() {
        let mut t = TraceAnalysis::default();
        for i in 0..5u8 {
            let mut r = rec(1, false, tx(ClientKind::Browser, 200, 10, false));
            r.server = ipv4::Addr::new(64, 0, 0, 1 + i);
            t.http.push(r);
        }
        let mut bot = rec(2, true, tx(ClientKind::GoogleBot1, 200, 10, false));
        bot.server = ipv4::Addr::new(10, 100, 6, 20);
        t.http.push(bot);
        let (ent, wan) = http_fanout(&[t]);
        assert_eq!(wan.quantile(1.0), Some(5.0));
        assert!(ent.is_empty());
        let (f3, _f4) = figures34(&[(
            "D0",
            (ent, wan),
            (Ecdf::new(Vec::new()), Ecdf::new(Vec::new())),
        )]);
        assert!(f3.render().contains("Figure 3"));
        assert!(f3.render().contains("wan:D0"));
    }

    #[test]
    fn content_table_rows() {
        let mut t = TraceAnalysis::default();
        let mut img = tx(ClientKind::Browser, 200, 3_000, false);
        img.content = ContentClass::Image;
        t.http.push(rec(1, true, img));
        t.http.push(rec(1, true, tx(ClientKind::Browser, 200, 1_000, false)));
        let ct = content_types(&[t]);
        assert!((ct.image.0 - 50.0).abs() < 1e-9);
        assert!((ct.image.2 - 75.0).abs() < 1e-9);
        assert!(table7(&ct).render().contains("application"));
    }
}
