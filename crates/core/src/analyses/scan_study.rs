//! Characterization of the scanning traffic removed in §3 — the paper
//! explicitly defers this: "a more in-depth study of characteristics that
//! the scanning traffic exposes is a fruitful area for future work."

use super::DatasetTraces;
use crate::records::is_internal;
use crate::report::Table;
use crate::stats::pct;
use ent_flow::{Proto, TcpOutcome};
use std::collections::{HashMap, HashSet};

/// Profile of one scanner source.
#[derive(Debug, Clone)]
pub struct ScannerProfile {
    /// Source address.
    pub source: ent_wire::ipv4::Addr,
    /// The source is inside the enterprise (the site's own scanners).
    pub internal: bool,
    /// Probe connections attributed to this source.
    pub probes: u64,
    /// Distinct targets probed.
    pub targets: u64,
    /// Distinct destination ports touched (0 for pure ICMP sweeps).
    pub ports: u64,
    /// Probe transport mix: (tcp, udp, icmp) fractions (%).
    pub transport_mix: (f64, f64, f64),
    /// Probes that drew any answer (%): services the scan *engaged* — the
    /// paper's caveat that scanners activate otherwise-idle services.
    pub answered_pct: f64,
    /// Median gap between successive probes, milliseconds.
    pub median_gap_ms: Option<f64>,
}

/// The scan study for one dataset.
#[derive(Debug, Clone, Default)]
pub struct ScanStudy {
    /// Per-source profiles, busiest first.
    pub profiles: Vec<ScannerProfile>,
    /// Share of all connections that was scanner traffic (%), the paper's
    /// 4–18% removal band.
    pub removed_conn_pct: f64,
}

/// Characterize the scanning traffic of a dataset.
pub fn scan_study(traces: &DatasetTraces) -> ScanStudy {
    let mut by_src: HashMap<u32, Vec<&crate::records::ConnRecord>> = HashMap::new();
    let (mut removed, mut kept) = (0u64, 0u64);
    for t in traces {
        kept += t.conns.len() as u64;
        removed += t.scanner_conns.len() as u64;
        for c in &t.scanner_conns {
            by_src.entry(c.orig_addr().0).or_default().push(c);
        }
    }
    let mut profiles: Vec<ScannerProfile> = by_src
        .into_iter()
        .map(|(src, conns)| {
            let source = ent_wire::ipv4::Addr(src);
            let targets: HashSet<u32> = conns.iter().map(|c| c.resp_addr().0).collect();
            let ports: HashSet<u16> = conns
                .iter()
                .filter(|c| c.proto() != Proto::Icmp)
                .map(|c| c.summary.key.resp.port)
                .collect();
            let n = conns.len() as u64;
            let count = |p: Proto| conns.iter().filter(|c| c.proto() == p).count() as u64;
            let answered = conns
                .iter()
                .filter(|c| {
                    c.summary.outcome == TcpOutcome::Successful && c.summary.resp.packets > 0
                })
                .count() as u64;
            let mut starts: Vec<u64> = conns.iter().map(|c| c.summary.start.micros()).collect();
            starts.sort_unstable();
            let gaps: Vec<f64> = starts
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64 / 1_000.0)
                .collect();
            let median_gap_ms = crate::stats::Ecdf::new(gaps).median();
            ScannerProfile {
                source,
                internal: is_internal(source),
                probes: n,
                targets: targets.len() as u64,
                ports: ports.len() as u64,
                transport_mix: (
                    pct(count(Proto::Tcp), n),
                    pct(count(Proto::Udp), n),
                    pct(count(Proto::Icmp), n),
                ),
                answered_pct: pct(answered, n),
                median_gap_ms,
            }
        })
        .collect();
    profiles.sort_by_key(|p| std::cmp::Reverse(p.probes));
    ScanStudy {
        removed_conn_pct: pct(removed, removed + kept),
        profiles,
    }
}

/// Render the scan study (top `max_sources` sources).
pub fn scan_table(studies: &[(&str, ScanStudy)], max_sources: usize) -> Table {
    let mut t = Table::new(
        "Scan study (future-work extension of paper sec. 3)",
        &["dataset/source", "where", "probes", "targets", "ports", "tcp/udp/icmp", "answered", "gap(ms)"],
    );
    for (name, s) in studies {
        t.row(vec![
            format!("{name}: removed {:.1}% of conns", s.removed_conn_pct),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
        for p in s.profiles.iter().take(max_sources) {
            t.row(vec![
                format!("  {}", p.source),
                if p.internal { "internal".into() } else { "external".into() },
                p.probes.to_string(),
                p.targets.to_string(),
                p.ports.to_string(),
                format!(
                    "{:.0}/{:.0}/{:.0}%",
                    p.transport_mix.0, p.transport_mix.1, p.transport_mix.2
                ),
                format!("{:.0}%", p.answered_pct),
                p.median_gap_ms
                    .map(|g| format!("{g:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn probe(src: ipv4::Addr, dst: ipv4::Addr, port: u16, t_ms: u64, answered: bool) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(src, 40_000),
                    resp: Endpoint::new(dst, port),
                },
                start: Timestamp::from_millis(t_ms),
                end: Timestamp::from_millis(t_ms + 1),
                orig: DirStats {
                    packets: 1,
                    ..Default::default()
                },
                resp: DirStats {
                    packets: u64::from(answered),
                    ..Default::default()
                },
                outcome: if answered {
                    TcpOutcome::Successful
                } else {
                    TcpOutcome::Unanswered
                },
                tcp_state: TcpState::SynSent,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: Category::OtherTcp,
        }
    }

    #[test]
    fn profiles_computed() {
        let scanner = ipv4::Addr::new(10, 100, 9, 10);
        let mut t = TraceAnalysis::default();
        for i in 0..60u8 {
            t.scanner_conns.push(probe(
                scanner,
                ipv4::Addr::new(10, 100, 3, 100 + (i % 100)),
                if i % 2 == 0 { 80 } else { 445 },
                i as u64 * 20,
                i % 10 == 0,
            ));
        }
        t.conns.push(probe(
            ipv4::Addr::new(10, 100, 1, 31),
            ipv4::Addr::new(10, 100, 2, 10),
            80,
            0,
            true,
        ));
        let s = scan_study(&[t]);
        assert_eq!(s.profiles.len(), 1);
        let p = &s.profiles[0];
        assert_eq!(p.probes, 60);
        assert_eq!(p.targets, 60);
        assert_eq!(p.ports, 2);
        assert!(p.internal);
        assert!((p.transport_mix.0 - 100.0).abs() < 1e-9);
        assert!((p.answered_pct - 10.0).abs() < 1e-9);
        assert_eq!(p.median_gap_ms, Some(20.0));
        assert!((s.removed_conn_pct - 60.0 / 61.0 * 100.0).abs() < 1e-6);
        let table = scan_table(&[("D0", s)], 5);
        assert!(table.render().contains("internal"));
    }

    #[test]
    fn empty_traces() {
        let s = scan_study(&[TraceAnalysis::default()]);
        assert!(s.profiles.is_empty());
        assert_eq!(s.removed_conn_pct, 0.0);
    }
}
