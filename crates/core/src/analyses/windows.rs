//! §5.2.1 Windows-service analyses: connection success by service
//! (Table 9), CIFS command breakdown (Table 10) and DCE/RPC function
//! breakdown (Table 11).

use super::DatasetTraces;
use crate::records::is_internal;
use crate::report::{fmt_bytes, Table};
use crate::stats::pct;
use ent_flow::Proto;
use ent_proto::cifs::CifsClass;
use ent_proto::dcerpc::RpcFunction;
use std::collections::HashMap;

/// Table 9: per-service host-pair connection outcomes (internal only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceSuccess {
    /// Distinct host-pairs.
    pub pairs: u64,
    /// Pairs with at least one successful connection (%).
    pub successful_pct: f64,
    /// Pairs whose connections were all rejected (%).
    pub rejected_pct: f64,
    /// Pairs whose connections all went unanswered (%).
    pub unanswered_pct: f64,
}

/// Compute Table 9 for ports 139 (NetBIOS-SSN), 445 (CIFS), 135 (EPM).
pub fn windows_success(traces: &DatasetTraces) -> [(u16, ServiceSuccess); 3] {
    [139u16, 445, 135].map(|port| {
        #[derive(Default)]
        struct PairState {
            ok: bool,
            rejected: bool,
            unanswered: bool,
        }
        let mut pairs: HashMap<(u32, u32), PairState> = HashMap::new();
        for t in traces {
            for c in &t.conns {
                if c.summary.key.proto != Proto::Tcp
                    || c.summary.key.resp.port != port
                    || !is_internal(c.orig_addr())
                    || !is_internal(c.resp_addr())
                {
                    continue;
                }
                let hp = c.summary.key.host_pair();
                let e = pairs.entry((hp.0 .0, hp.1 .0)).or_default();
                match c.summary.outcome {
                    ent_flow::TcpOutcome::Successful => e.ok = true,
                    ent_flow::TcpOutcome::Rejected => e.rejected = true,
                    ent_flow::TcpOutcome::Unanswered => e.unanswered = true,
                    _ => {}
                }
            }
        }
        let total = pairs.len() as u64;
        let ok = pairs.values().filter(|p| p.ok).count() as u64;
        let rej = pairs.values().filter(|p| !p.ok && p.rejected).count() as u64;
        let un = pairs
            .values()
            .filter(|p| !p.ok && !p.rejected && p.unanswered)
            .count() as u64;
        (
            port,
            ServiceSuccess {
                pairs: total,
                successful_pct: pct(ok, total),
                rejected_pct: pct(rej, total),
                unanswered_pct: pct(un, total),
            },
        )
    })
}

/// NetBIOS-SSN application-handshake success rate (%), by host pair.
pub fn ssn_handshake_success(traces: &DatasetTraces) -> f64 {
    let (mut ok, mut total) = (0u64, 0u64);
    for t in traces {
        for c in &t.cifs {
            if c.ssn_requested {
                total += 1;
                ok += u64::from(c.ssn_positive);
            }
        }
    }
    pct(ok, total)
}

/// Render Table 9 across datasets.
pub fn table9(rows: &[(&str, [(u16, ServiceSuccess); 3])]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/NBSSN"));
        headers.push(format!("{n}/CIFS"));
        headers.push(format!("{n}/EPM"));
    }
    let mut t = Table::new(
        "Table 9: Windows connection success (by internal host-pairs)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let fields: [(&str, fn(&ServiceSuccess) -> String); 4] = [
        ("Total pairs", |s| s.pairs.to_string()),
        ("Successful", |s| format!("{:.0}%", s.successful_pct)),
        ("Rejected", |s| format!("{:.0}%", s.rejected_pct)),
        ("Unanswered", |s| format!("{:.0}%", s.unanswered_pct)),
    ];
    for (label, f) in fields {
        let mut row = vec![label.to_string()];
        for (_, svc) in rows {
            for (_, s) in svc {
                row.push(f(s));
            }
        }
        t.row(row);
    }
    t
}

/// Table 10: CIFS command-class breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CifsBreakdown {
    /// Total request messages.
    pub requests: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Per class: (requests %, bytes %).
    pub per_class: Vec<(CifsClass, f64, f64)>,
}

/// Compute Table 10.
pub fn cifs_breakdown(traces: &DatasetTraces) -> CifsBreakdown {
    let mut req: HashMap<CifsClass, u64> = HashMap::new();
    let mut bytes: HashMap<CifsClass, u64> = HashMap::new();
    let (mut tr, mut tb) = (0u64, 0u64);
    for t in traces {
        for c in &t.cifs {
            for (class, r, _resp, b) in &c.per_class {
                *req.entry(*class).or_default() += r;
                *bytes.entry(*class).or_default() += b;
                tr += r;
                tb += b;
            }
        }
    }
    let order = [
        CifsClass::SmbBasic,
        CifsClass::RpcPipes,
        CifsClass::FileSharing,
        CifsClass::Lanman,
        CifsClass::Other,
    ];
    CifsBreakdown {
        requests: tr,
        bytes: tb,
        per_class: order
            .iter()
            .map(|c| {
                (
                    *c,
                    pct(req.get(c).copied().unwrap_or(0), tr),
                    pct(bytes.get(c).copied().unwrap_or(0), tb),
                )
            })
            .collect(),
    }
}

/// Render Table 10 across datasets.
pub fn table10(rows: &[(&str, CifsBreakdown)]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/req"));
        headers.push(format!("{n}/data"));
    }
    let mut t = Table::new(
        "Table 10: CIFS command breakdown",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut total = vec!["Total".to_string()];
    for (_, b) in rows {
        total.push(b.requests.to_string());
        total.push(fmt_bytes(b.bytes));
    }
    t.row(total);
    for i in 0..5 {
        let label = rows
            .first()
            .and_then(|(_, b)| b.per_class.get(i))
            .map(|c| c.0.label().to_string())
            .unwrap_or_default();
        let mut row = vec![label];
        for (_, b) in rows {
            let Some(c) = b.per_class.get(i) else {
                continue;
            };
            row.push(format!("{:.0}%", c.1));
            row.push(format!("{:.0}%", c.2));
        }
        t.row(row);
    }
    t
}

/// Table 11: DCE/RPC function breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RpcBreakdown {
    /// Total calls.
    pub calls: u64,
    /// Total stub bytes.
    pub bytes: u64,
    /// Per function: (requests %, bytes %).
    pub per_function: Vec<(RpcFunction, f64, f64)>,
}

/// Compute Table 11. Endpoint-mapper calls fold into Other, matching the
/// paper's row set.
pub fn rpc_breakdown(traces: &DatasetTraces) -> RpcBreakdown {
    let mut calls: HashMap<RpcFunction, u64> = HashMap::new();
    let mut bytes: HashMap<RpcFunction, u64> = HashMap::new();
    let (mut tc, mut tb) = (0u64, 0u64);
    for t in traces {
        for r in &t.rpc {
            let f = if r.function == RpcFunction::EpmMap {
                RpcFunction::Other
            } else {
                r.function
            };
            let b = r.request_bytes + r.response_bytes;
            *calls.entry(f).or_default() += 1;
            *bytes.entry(f).or_default() += b;
            tc += 1;
            tb += b;
        }
    }
    let order = [
        RpcFunction::NetLogon,
        RpcFunction::LsaRpc,
        RpcFunction::SpoolssWritePrinter,
        RpcFunction::SpoolssOther,
        RpcFunction::Other,
    ];
    RpcBreakdown {
        calls: tc,
        bytes: tb,
        per_function: order
            .iter()
            .map(|f| {
                (
                    *f,
                    pct(calls.get(f).copied().unwrap_or(0), tc),
                    pct(bytes.get(f).copied().unwrap_or(0), tb),
                )
            })
            .collect(),
    }
}

/// Render Table 11 across datasets.
pub fn table11(rows: &[(&str, RpcBreakdown)]) -> Table {
    let mut headers = vec!["".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/req"));
        headers.push(format!("{n}/data"));
    }
    let mut t = Table::new(
        "Table 11: DCE/RPC function breakdown",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut total = vec!["Total".to_string()];
    for (_, b) in rows {
        total.push(b.calls.to_string());
        total.push(fmt_bytes(b.bytes));
    }
    t.row(total);
    for i in 0..5 {
        let label = rows
            .first()
            .and_then(|(_, b)| b.per_function.get(i))
            .map(|f| f.0.label().to_string())
            .unwrap_or_default();
        let mut row = vec![label];
        for (_, b) in rows {
            let Some(f) = b.per_function.get(i) else {
                continue;
            };
            row.push(format!("{:.1}%", f.1));
            row.push(format!("{:.1}%", f.2));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CifsConnRecord, ConnRecord, RpcRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, TcpOutcome, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn conn(port: u16, client_n: u8, outcome: TcpOutcome) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, client_n), 40_000),
                    resp: Endpoint::new(ipv4::Addr::new(10, 100, 4, 10), port),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats::default(),
                resp: DirStats::default(),
                outcome,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: Category::Windows,
        }
    }

    #[test]
    fn table9_parallel_dial_pattern() {
        let mut t = TraceAnalysis::default();
        // 4 clients dial 139 (all succeed) and 445 (half rejected).
        for i in 0..4u8 {
            t.conns.push(conn(139, 30 + i, TcpOutcome::Successful));
            t.conns.push(conn(
                445,
                30 + i,
                if i < 2 {
                    TcpOutcome::Successful
                } else {
                    TcpOutcome::Rejected
                },
            ));
        }
        let svc = windows_success(&[t]);
        assert_eq!(svc[0].0, 139);
        assert_eq!(svc[0].1.successful_pct, 100.0);
        assert_eq!(svc[1].1.successful_pct, 50.0);
        assert_eq!(svc[1].1.rejected_pct, 50.0);
        assert_eq!(svc[2].1.pairs, 0);
        assert!(table9(&[("D0", svc)]).render().contains("Rejected"));
    }

    #[test]
    fn cifs_and_rpc_breakdowns() {
        let mut t = TraceAnalysis::default();
        let mut c = CifsConnRecord {
            ssn_requested: true,
            ssn_positive: true,
            ..Default::default()
        };
        c.count(CifsClass::SmbBasic, false, 600);
        c.count(CifsClass::RpcPipes, false, 8_000);
        c.count(CifsClass::FileSharing, false, 1_400);
        t.cifs.push(c);
        t.rpc.push(RpcRecord {
            function: RpcFunction::SpoolssWritePrinter,
            request_bytes: 4_096,
            response_bytes: 16,
        });
        t.rpc.push(RpcRecord {
            function: RpcFunction::NetLogon,
            request_bytes: 180,
            response_bytes: 120,
        });
        t.rpc.push(RpcRecord {
            function: RpcFunction::EpmMap,
            request_bytes: 80,
            response_bytes: 26,
        });
        let cb = cifs_breakdown(&[t.clone_for_test()]);
        assert_eq!(cb.requests, 3);
        let rpc_row = cb.per_class.iter().find(|e| e.0 == CifsClass::RpcPipes).unwrap();
        assert!(rpc_row.2 > 50.0, "RPC pipes should dominate bytes");
        let rb = rpc_breakdown(&[t]);
        assert_eq!(rb.calls, 3);
        let wp = rb
            .per_function
            .iter()
            .find(|e| e.0 == RpcFunction::SpoolssWritePrinter)
            .unwrap();
        assert!(wp.2 > 80.0);
        // EpmMap folded into Other.
        let other = rb.per_function.iter().find(|e| e.0 == RpcFunction::Other).unwrap();
        assert!(other.1 > 0.0);
        assert!(table10(&[("D0", cb)]).render().contains("LANMAN"));
        assert!(table11(&[("D0", rb)]).render().contains("Spoolss/WritePrinter"));
        assert_eq!(ssn_handshake_success(&[TraceAnalysis::default()]), 0.0);
    }

    impl TraceAnalysis {
        fn clone_for_test(&self) -> TraceAnalysis {
            TraceAnalysis {
                cifs: self.cifs.clone(),
                rpc: self.rpc.clone(),
                ..Default::default()
            }
        }
    }
}
