//! Table 3: transport breakdown — payload bytes and connections by
//! TCP/UDP/ICMP (post scanner removal).

use super::DatasetTraces;
use crate::report::Table;
use crate::stats::pct;
use ent_flow::Proto;

/// Per-dataset transport shares.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportBreakdown {
    /// Total payload bytes.
    pub bytes: u64,
    /// TCP byte share (%).
    pub tcp_bytes_pct: f64,
    /// UDP byte share (%).
    pub udp_bytes_pct: f64,
    /// ICMP byte share (%).
    pub icmp_bytes_pct: f64,
    /// Total connections.
    pub conns: u64,
    /// TCP connection share (%).
    pub tcp_conns_pct: f64,
    /// UDP connection share (%).
    pub udp_conns_pct: f64,
    /// ICMP connection share (%).
    pub icmp_conns_pct: f64,
}

/// Compute Table 3 for one dataset.
pub fn transport(traces: &DatasetTraces) -> TransportBreakdown {
    let mut bytes = [0u64; 3];
    let mut conns = [0u64; 3];
    for t in traces {
        for c in &t.conns {
            let i = match c.proto() {
                Proto::Tcp => 0,
                Proto::Udp => 1,
                Proto::Icmp => 2,
            };
            if let Some(b) = bytes.get_mut(i) {
                *b += c.payload_bytes();
            }
            if let Some(n) = conns.get_mut(i) {
                *n += 1;
            }
        }
    }
    let tb: u64 = bytes.iter().sum();
    let tc: u64 = conns.iter().sum();
    TransportBreakdown {
        bytes: tb,
        tcp_bytes_pct: pct(bytes[0], tb),
        udp_bytes_pct: pct(bytes[1], tb),
        icmp_bytes_pct: pct(bytes[2], tb),
        conns: tc,
        tcp_conns_pct: pct(conns[0], tc),
        udp_conns_pct: pct(conns[1], tc),
        icmp_conns_pct: pct(conns[2], tc),
    }
}

/// Render Table 3 across datasets.
pub fn table3(rows: &[(&str, TransportBreakdown)]) -> Table {
    let headers: Vec<&str> = std::iter::once("").chain(rows.iter().map(|(n, _)| *n)).collect();
    let mut t = Table::new(
        "Table 3: Transport breakdown (payload bytes / connections)",
        &headers,
    );
    let fields: [(&str, fn(&TransportBreakdown) -> String); 8] = [
        ("Bytes (GB)", |b| format!("{:.2}", b.bytes as f64 / 1e9)),
        ("TCP", |b| format!("{:.0}%", b.tcp_bytes_pct)),
        ("UDP", |b| format!("{:.0}%", b.udp_bytes_pct)),
        ("ICMP", |b| format!("{:.0}%", b.icmp_bytes_pct)),
        ("Conns (M)", |b| format!("{:.2}", b.conns as f64 / 1e6)),
        ("TCP ", |b| format!("{:.0}%", b.tcp_conns_pct)),
        ("UDP ", |b| format!("{:.0}%", b.udp_conns_pct)),
        ("ICMP ", |b| format!("{:.0}%", b.icmp_conns_pct)),
    ];
    for (label, f) in fields {
        let mut row = vec![label.to_string()];
        row.extend(rows.iter().map(|(_, b)| f(b)));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, TcpOutcome, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn conn(proto: Proto, bytes: u64) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, 1), 1),
                    resp: Endpoint::new(ipv4::Addr::new(10, 100, 2, 2), 2),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    payload_bytes: bytes,
                    ..Default::default()
                },
                resp: DirStats::default(),
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: Category::OtherTcp,
        }
    }

    #[test]
    fn tcp_bytes_udp_conns_pattern() {
        // The paper's signature: TCP carries the bytes, UDP the conns.
        let mut t = TraceAnalysis::default();
        t.conns.push(conn(Proto::Tcp, 1_000_000));
        for _ in 0..8 {
            t.conns.push(conn(Proto::Udp, 100));
        }
        t.conns.push(conn(Proto::Icmp, 64));
        let b = transport(&[t]);
        assert!(b.tcp_bytes_pct > 99.0);
        assert!(b.udp_conns_pct == 80.0);
        assert!(b.icmp_conns_pct == 10.0);
        assert_eq!(b.conns, 10);
        let table = table3(&[("D0", b)]);
        assert!(table.render().contains("Bytes (GB)"));
    }
}
