//! Traffic-profile variability across traces — the paper notes "the plot
//! highlights the differences in traffic profile across time and area of
//! the network monitored … clearly a fruitful area for future work"
//! (§3). This module quantifies that variability: for each application
//! category, the spread of its per-trace byte share.

use super::DatasetTraces;
use crate::report::Table;
use crate::stats::{pct, Ecdf};
use ent_proto::Category;

/// Variability of one category's byte share across a dataset's traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct CategoryVariability {
    /// Mean per-trace byte share (%).
    pub mean_pct: f64,
    /// Minimum per-trace share (%).
    pub min_pct: f64,
    /// Maximum per-trace share (%).
    pub max_pct: f64,
    /// Coefficient of variation (stddev / mean) of the share, the
    /// stability metric (net-mgnt/misc should be low; backup high).
    pub cv: f64,
}

/// Compute per-category share variability across traces.
pub fn variability(traces: &DatasetTraces) -> Vec<(Category, CategoryVariability)> {
    // Per trace, per category byte shares.
    let mut shares: std::collections::HashMap<Category, Vec<f64>> = Default::default();
    for t in traces {
        let mut by_cat: std::collections::HashMap<Category, u64> = Default::default();
        let mut total = 0u64;
        for c in &t.conns {
            let b = c.payload_bytes();
            *by_cat.entry(c.category).or_default() += b;
            total += b;
        }
        if total == 0 {
            continue;
        }
        for &cat in Category::ALL.iter() {
            shares
                .entry(cat)
                .or_default()
                .push(pct(by_cat.get(&cat).copied().unwrap_or(0), total));
        }
    }
    Category::ALL
        .iter()
        .map(|&cat| {
            let vals = shares.get(&cat).cloned().unwrap_or_default();
            let e = Ecdf::new(vals.clone());
            let mean = e.mean().unwrap_or(0.0);
            let var = if vals.len() > 1 {
                vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64
            } else {
                0.0
            };
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            (
                cat,
                CategoryVariability {
                    mean_pct: mean,
                    min_pct: e.quantile(0.0).unwrap_or(0.0),
                    max_pct: e.quantile(1.0).unwrap_or(0.0),
                    cv,
                },
            )
        })
        .collect()
}

/// Render the variability table across datasets.
pub fn variability_table(rows: &[(&str, Vec<(Category, CategoryVariability)>)]) -> Table {
    let mut headers = vec!["category".to_string()];
    for (n, _) in rows {
        headers.push(format!("{n}/mean%"));
        headers.push(format!("{n}/cv"));
    }
    let mut t = Table::new(
        "Per-trace byte-share variability (future-work extension of paper sec. 3)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (i, &cat) in Category::ALL.iter().enumerate() {
        let mut row = vec![cat.label().to_string()];
        for (_, v) in rows {
            let Some(cv) = v.get(i).map(|x| x.1) else {
                continue;
            };
            row.push(format!("{:.1}", cv.mean_pct));
            row.push(format!("{:.1}", cv.cv));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_wire::{ipv4, Timestamp};

    fn conn(cat: Category, bytes: u64) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, 30), 40_000),
                    resp: Endpoint::new(ipv4::Addr::new(10, 100, 2, 10), 80),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    packets: 1,
                    payload_bytes: bytes,
                    ..Default::default()
                },
                resp: DirStats::default(),
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: cat,
        }
    }

    #[test]
    fn stable_category_has_low_cv() {
        // net-mgnt steady at 10% in each trace; backup swings 0..50%.
        let mut traces = Vec::new();
        for i in 0..6u64 {
            let mut t = TraceAnalysis::default();
            t.conns.push(conn(Category::NetMgnt, 100));
            t.conns.push(conn(Category::Backup, i * 200));
            t.conns.push(conn(Category::Web, 900 - i * 100));
            traces.push(t);
        }
        let v = variability(&traces);
        let get = |c: Category| v.iter().find(|(k, _)| *k == c).unwrap().1;
        assert!(get(Category::Backup).cv > get(Category::NetMgnt).cv);
        assert!(get(Category::Backup).max_pct > get(Category::Backup).min_pct);
        let table = variability_table(&[("D1", v)]);
        assert!(table.render().contains("net-mgnt"));
    }

    #[test]
    fn empty_dataset_safe() {
        let v = variability(&[]);
        assert_eq!(v.len(), Category::ALL.len());
        assert!(v.iter().all(|(_, c)| c.mean_pct == 0.0));
    }
}
