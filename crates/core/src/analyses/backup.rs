//! §5.2.3 backup analysis: Table 15 plus the directionality findings.

use super::DatasetTraces;
use crate::report::{fmt_bytes, Table};
use ent_proto::AppProtocol;

/// Table 15 plus directionality findings, aggregated across datasets as
/// the paper does.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackupAnalysis {
    /// Veritas control: (connections, bytes).
    pub veritas_ctrl: (u64, u64),
    /// Veritas data: (connections, bytes).
    pub veritas_data: (u64, u64),
    /// Dantz: (connections, bytes).
    pub dantz: (u64, u64),
    /// Connected (off-site): (connections, bytes).
    pub connected: (u64, u64),
    /// Veritas data connections that are essentially one-way
    /// client→server (the paper: all of them).
    pub veritas_one_way: u64,
    /// Dantz connections with substantial flow in *both* directions
    /// (each direction ≥ 10 KB and ≥ 5% of the other).
    pub dantz_bidirectional: u64,
}

/// Compute the backup analysis.
pub fn backup_analysis(traces: &DatasetTraces) -> BackupAnalysis {
    let mut a = BackupAnalysis::default();
    for t in traces {
        for c in &t.conns {
            let b = c.payload_bytes();
            match c.app {
                Some(AppProtocol::VeritasBackupCtrl) => {
                    a.veritas_ctrl.0 += 1;
                    a.veritas_ctrl.1 += b;
                }
                Some(AppProtocol::VeritasBackupData) => {
                    a.veritas_data.0 += 1;
                    a.veritas_data.1 += b;
                    if c.summary.resp.payload_bytes * 50 < c.summary.orig.payload_bytes.max(1) {
                        a.veritas_one_way += 1;
                    }
                }
                Some(AppProtocol::DantzRetrospect) => {
                    a.dantz.0 += 1;
                    a.dantz.1 += b;
                    let (up, down) = (c.summary.orig.payload_bytes, c.summary.resp.payload_bytes);
                    if up.min(down) > 10_000 && up.min(down) * 20 > up.max(down) {
                        a.dantz_bidirectional += 1;
                    }
                }
                Some(AppProtocol::ConnectedBackup) => {
                    a.connected.0 += 1;
                    a.connected.1 += b;
                }
                _ => {}
            }
        }
    }
    a
}

/// Render Table 15.
pub fn table15(a: &BackupAnalysis) -> Table {
    let mut t = Table::new(
        "Table 15: Backup applications",
        &["", "Connections", "Bytes"],
    );
    for (label, (c, b)) in [
        ("VERITAS-BACKUP-CTRL", a.veritas_ctrl),
        ("VERITAS-BACKUP-DATA", a.veritas_data),
        ("DANTZ", a.dantz),
        ("CONNECTED-BACKUP", a.connected),
    ] {
        t.row(vec![label.to_string(), c.to_string(), fmt_bytes(b)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn conn(app: AppProtocol, port: u16, up: u64, down: u64) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Tcp,
                    orig: Endpoint::new(ipv4::Addr::new(10, 100, 1, 1), 40_000),
                    resp: Endpoint::new(ipv4::Addr::new(10, 100, 5, 10), port),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats {
                    payload_bytes: up,
                    ..Default::default()
                },
                resp: DirStats {
                    payload_bytes: down,
                    ..Default::default()
                },
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::Closed,
                multicast: false,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: Some(app),
            category: Category::Backup,
        }
    }

    #[test]
    fn directionality_findings() {
        let mut t = TraceAnalysis::default();
        t.conns.push(conn(AppProtocol::VeritasBackupCtrl, 13_720, 500, 300));
        t.conns.push(conn(AppProtocol::VeritasBackupData, 13_724, 20_000_000, 100));
        t.conns.push(conn(AppProtocol::DantzRetrospect, 497, 15_000_000, 8_000_000));
        t.conns.push(conn(AppProtocol::DantzRetrospect, 497, 5_000_000, 2_000));
        t.conns.push(conn(AppProtocol::DantzRetrospect, 497, 5_000_000, 400_000));
        t.conns.push(conn(AppProtocol::ConnectedBackup, 16_384, 2_000_000, 10_000));
        let a = backup_analysis(&[t]);
        assert_eq!(a.veritas_data.0, 1);
        assert_eq!(a.veritas_one_way, 1);
        assert_eq!(a.dantz.0, 3);
        assert_eq!(a.dantz_bidirectional, 2);
        assert_eq!(a.connected.0, 1);
        let out = table15(&a).render();
        assert!(out.contains("DANTZ"));
        assert!(out.contains("20.0MB"));
    }
}
