//! §4 origins: where flows come from and go to.

use super::DatasetTraces;
use crate::records::is_internal;
use crate::report::Table;
use crate::stats::pct;

/// Flow-origin fractions (paper §4: 71–79% ent↔ent, 2–3% ent→wan,
/// 6–11% wan→ent, 5–10% multicast from inside, 4–7% multicast from
/// outside).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Origins {
    /// Unicast, both endpoints internal (%).
    pub ent_to_ent_pct: f64,
    /// Unicast, internal originator → external responder (%).
    pub ent_to_wan_pct: f64,
    /// Unicast, external originator → internal responder (%).
    pub wan_to_ent_pct: f64,
    /// Multicast sourced internally (%).
    pub mcast_internal_pct: f64,
    /// Multicast sourced externally (%).
    pub mcast_external_pct: f64,
    /// Total flows.
    pub flows: u64,
}

/// Compute §4's origin fractions.
pub fn origins(traces: &DatasetTraces) -> Origins {
    let (mut ee, mut ew, mut we, mut mi, mut me, mut total) = (0u64, 0, 0, 0, 0, 0u64);
    for t in traces {
        for c in &t.conns {
            total += 1;
            let oi = is_internal(c.orig_addr());
            if c.summary.multicast {
                if oi {
                    mi += 1;
                } else {
                    me += 1;
                }
            } else {
                let ri = is_internal(c.resp_addr());
                match (oi, ri) {
                    (true, true) => ee += 1,
                    (true, false) => ew += 1,
                    (false, true) => we += 1,
                    (false, false) => {}
                }
            }
        }
    }
    Origins {
        ent_to_ent_pct: pct(ee, total),
        ent_to_wan_pct: pct(ew, total),
        wan_to_ent_pct: pct(we, total),
        mcast_internal_pct: pct(mi, total),
        mcast_external_pct: pct(me, total),
        flows: total,
    }
}

/// Render the origin fractions across datasets.
pub fn origins_table(rows: &[(&str, Origins)]) -> Table {
    let headers: Vec<&str> = std::iter::once("").chain(rows.iter().map(|(n, _)| *n)).collect();
    let mut t = Table::new("Origins of flows (paper sec. 4)", &headers);
    let fields: [(&str, fn(&Origins) -> f64); 5] = [
        ("ent <-> ent", |o| o.ent_to_ent_pct),
        ("ent -> wan", |o| o.ent_to_wan_pct),
        ("wan -> ent", |o| o.wan_to_ent_pct),
        ("mcast (int src)", |o| o.mcast_internal_pct),
        ("mcast (ext src)", |o| o.mcast_external_pct),
    ];
    for (label, f) in fields {
        let mut row = vec![label.to_string()];
        row.extend(rows.iter().map(|(_, o)| format!("{:.1}%", f(o))));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ConnRecord, TraceAnalysis};
    use ent_flow::{ConnSummary, DirStats, Endpoint, FlowKey, Proto, TcpOutcome, TcpState};
    use ent_proto::Category;
    use ent_wire::{ipv4, Timestamp};

    fn conn(orig: ipv4::Addr, resp: ipv4::Addr, mcast: bool) -> ConnRecord {
        ConnRecord {
            summary: ConnSummary {
                key: FlowKey {
                    proto: Proto::Udp,
                    orig: Endpoint::new(orig, 1),
                    resp: Endpoint::new(resp, 2),
                },
                start: Timestamp::ZERO,
                end: Timestamp::ZERO,
                orig: DirStats::default(),
                resp: DirStats::default(),
                outcome: TcpOutcome::Successful,
                tcp_state: TcpState::NotTcp,
                multicast: mcast,
                acked_unseen_data: false,
                icmp_answered: false,
            },
            app: None,
            category: Category::OtherUdp,
        }
    }

    #[test]
    fn fractions() {
        let int = ipv4::Addr::new(10, 100, 1, 1);
        let int2 = ipv4::Addr::new(10, 100, 2, 2);
        let ext = ipv4::Addr::new(64, 1, 1, 1);
        let grp = ipv4::Addr::new(239, 0, 0, 1);
        let mut t = TraceAnalysis::default();
        for _ in 0..7 {
            t.conns.push(conn(int, int2, false));
        }
        t.conns.push(conn(int, ext, false));
        t.conns.push(conn(ext, int, false));
        t.conns.push(conn(int, grp, true));
        let o = origins(&[t]);
        assert_eq!(o.flows, 10);
        assert!((o.ent_to_ent_pct - 70.0).abs() < 1e-9);
        assert!((o.ent_to_wan_pct - 10.0).abs() < 1e-9);
        assert!((o.wan_to_ent_pct - 10.0).abs() < 1e-9);
        assert!((o.mcast_internal_pct - 10.0).abs() < 1e-9);
        assert!(origins_table(&[("D0", o)]).render().contains("mcast"));
    }
}
