//! Small statistics toolkit: empirical CDFs (the paper's figures are
//! nearly all CDFs), quantiles and summary statistics.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1) by the nearest-rank convention: the
    /// smallest sample whose cumulative fraction is ≥ q, i.e. rank
    /// `ceil(q·n)` (1-based). `q = 0.0` maps exactly to the minimum and
    /// `q = 1.0` exactly to the maximum; no interpolation is performed, so
    /// every returned value is an observed sample. (The previous
    /// `round((n-1)·q)` scheme biased small-n quantiles — at n ≤ 10 it
    /// collapsed q = 0.95 onto the max.) None when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        let idx = rank.max(1).min(n) - 1;
        self.sorted.get(idx).copied()
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ x.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Smallest and largest samples.
    pub fn range(&self) -> Option<(f64, f64)> {
        Some((*self.sorted.first()?, *self.sorted.last()?))
    }

    /// Mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Sample points for plotting: `count` evenly spaced quantiles,
    /// as (value, cumulative fraction) pairs.
    pub fn plot_points(&self, count: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || count == 0 {
            return Vec::new();
        }
        (0..=count)
            .map(|i| {
                let q = i as f64 / count as f64;
                (self.quantile(q).unwrap_or_default(), q)
            })
            .collect()
    }
}

/// Five-number-plus-mean summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize samples; None when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let e = Ecdf::new(samples.to_vec());
        Some(Summary {
            min: e.quantile(0.0)?,
            p25: e.quantile(0.25)?,
            median: e.quantile(0.5)?,
            p75: e.quantile(0.75)?,
            max: e.quantile(1.0)?,
            mean: e.mean()?,
        })
    }
}

/// Percentage helper: `part / whole * 100`, 0 when whole is 0.
pub fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Percentage for float accumulators.
pub fn pct_f(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        part / whole * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_median() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.n(), 5);
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.range(), Some((1.0, 5.0)));
    }

    #[test]
    fn fraction_le() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(2.0), 0.5);
        assert_eq!(e.fraction_le(10.0), 1.0);
    }

    #[test]
    fn empty_behaviour() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert!(e.plot_points(10).is_empty());
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn nans_dropped() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(e.n(), 2);
    }

    #[test]
    fn plot_points_monotone() {
        let e = Ecdf::new((0..100).map(|i| i as f64).collect());
        let pts = e.plot_points(20);
        assert_eq!(pts.len(), 21);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[20].1, 1.0);
    }

    #[test]
    fn summary_of_uniform() {
        let s = Summary::of(&(1..=100).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.0).abs() <= 1.0);
    }

    #[test]
    fn small_n_nearest_rank_not_biased() {
        // n = 2: the old round((n-1)·q) scheme mapped q = 0.5 to the max;
        // nearest-rank says one of two samples already covers half the mass.
        let e = Ecdf::new(vec![1.0, 2.0]);
        assert_eq!(e.median(), Some(1.0));
        // n = 4, q = 0.25: exactly one sample covers a quarter of the mass.
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.quantile(0.25), Some(1.0));
        assert_eq!(e.quantile(0.75), Some(3.0));
    }

    #[test]
    fn quantile_nearest_rank_property() {
        // Seeded property sweep: for every sampled vector and probability,
        // the quantile must (a) be an observed sample, (b) cover at least
        // fraction q of the mass, (c) be the *smallest* such sample, and
        // (d) pin q=0/q=1 to min/max exactly.
        let mut state = 0x2005_1234_u64;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 1usize..=40 {
            let samples: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64).collect();
            let e = Ecdf::new(samples.clone());
            let (min, max) = e.range().unwrap();
            assert_eq!(e.quantile(0.0), Some(min));
            assert_eq!(e.quantile(1.0), Some(max));
            let mut prev = f64::NEG_INFINITY;
            for step in 0..=20 {
                let q = step as f64 / 20.0;
                let v = e.quantile(q).unwrap();
                assert!(samples.contains(&v), "quantile not an observed sample");
                assert!(e.fraction_le(v) >= q, "q={q} n={n}: mass below {v} too small");
                // Minimality: any strictly smaller sample covers < q.
                let below = samples.iter().filter(|&&s| s < v).count();
                assert!(
                    (below as f64) / (n as f64) < q || q == 0.0,
                    "q={q} n={n}: {v} is not the smallest sample covering q"
                );
                assert!(v >= prev, "quantile not monotone in q");
                prev = v;
            }
        }
    }

    #[test]
    fn pct_helpers() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(1, 0), 0.0);
        assert_eq!(pct_f(2.0, 8.0), 25.0);
        assert_eq!(pct_f(2.0, 0.0), 0.0);
    }
}
