//! Study orchestration: generate + analyze whole datasets, parallel
//! across traces (each trace is independent, exactly like the paper's
//! per-subnet capture files).

use crate::pipeline::{analyze_trace, PipelineConfig};
use crate::records::{IngestHealth, TraceAnalysis};
use ent_gen::build::{build_site, generate_trace, GenConfig};
use ent_gen::dataset::{all_datasets, DatasetSpec};
use std::sync::Mutex;

/// Configuration for a study run.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct StudyConfig {
    /// Generator configuration (scale, seed).
    pub gen: GenConfig,
    /// Pipeline configuration (scanner removal).
    pub pipeline: PipelineConfig,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}


/// One analyzed dataset.
#[derive(Debug)]
pub struct DatasetAnalysis {
    /// The dataset spec used.
    pub spec: DatasetSpec,
    /// Per-trace analyses, ordered by (pass, subnet).
    pub traces: Vec<TraceAnalysis>,
}

impl DatasetAnalysis {
    /// Ingest damage aggregated across every trace of the dataset.
    pub fn ingest_health(&self) -> IngestHealth {
        let mut h = IngestHealth::default();
        for t in &self.traces {
            h.absorb(&t.health);
        }
        h
    }
}

/// Generate and analyze one dataset, trace-parallel. Packets are dropped
/// as soon as each trace is analyzed, bounding memory.
pub fn run_dataset(spec: &DatasetSpec, config: &StudyConfig) -> DatasetAnalysis {
    let (site, wan) = build_site(spec, &config.gen);
    // Work list of (subnet, pass).
    let mut work = Vec::new();
    for pass in 1..=spec.passes {
        for subnet in spec.monitored.clone() {
            if spec.name == "D4" && pass == 2 && subnet % 2 == 0 {
                continue;
            }
            work.push((subnet, pass));
        }
    }
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(work.len().max(1))
    } else {
        config.threads
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, TraceAnalysis)>> = Mutex::new(Vec::with_capacity(work.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(subnet, pass)) = work.get(i) else {
                    break;
                };
                let trace = generate_trace(&site, &wan, spec, subnet, pass, &config.gen);
                let analysis = analyze_trace(&trace, &config.pipeline);
                // A worker that panicked poisons the lock; the analysis it
                // produced is still valid, so recover the guard.
                results
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, analysis));
            });
        }
    });
    let mut results = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    results.sort_by_key(|(i, _)| *i);
    DatasetAnalysis {
        spec: spec.clone(),
        traces: results.into_iter().map(|(_, a)| a).collect(),
    }
}

/// Run the whole five-dataset study.
pub fn run_study(config: &StudyConfig) -> Vec<DatasetAnalysis> {
    all_datasets()
        .iter()
        .map(|spec| run_dataset(spec, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StudyConfig {
        StudyConfig {
            gen: GenConfig {
                scale: 0.003,
                seed: 5,
                hosts_per_subnet: Some(8),
            },
            ..Default::default()
        }
    }

    #[test]
    fn run_dataset_produces_one_analysis_per_trace() {
        let specs = all_datasets();
        let da = run_dataset(&specs[0], &tiny());
        assert_eq!(da.traces.len(), 22);
        assert!(da.traces.iter().all(|t| t.packets > 0));
        // Deterministic ordering by (pass, subnet).
        assert_eq!(da.traces[0].subnet, 0);
        assert_eq!(da.traces[21].subnet, 21);
    }

    #[test]
    fn parallel_equals_serial() {
        let specs = all_datasets();
        let mut spec = specs[0].clone();
        spec.monitored = 0..4;
        let par = run_dataset(
            &spec,
            &StudyConfig {
                threads: 4,
                ..tiny()
            },
        );
        let ser = run_dataset(
            &spec,
            &StudyConfig {
                threads: 1,
                ..tiny()
            },
        );
        assert_eq!(par.traces.len(), ser.traces.len());
        for (a, b) in par.traces.iter().zip(&ser.traces) {
            assert_eq!(a.packets, b.packets);
            assert_eq!(a.conns.len(), b.conns.len());
            assert_eq!(a.subnet, b.subnet);
            assert_eq!(a.health, b.health);
        }
    }
}
