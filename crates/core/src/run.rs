//! Study orchestration: generate + analyze whole datasets, parallel
//! across traces (each trace is independent, exactly like the paper's
//! per-subnet capture files).
//!
//! All datasets of a study share a single global work queue — workers
//! never idle at a dataset boundary waiting for the previous dataset's
//! last straggler traces.

use crate::metrics::{PipelineMetrics, StageTimer};
use crate::pipeline::{analyze_packets, PipelineConfig};
use crate::records::{IngestHealth, TraceAnalysis};
use ent_gen::build::{build_site, generate_trace_into, GenConfig};
use ent_gen::dataset::{all_datasets, DatasetSpec};
use std::sync::Mutex;

/// Configuration for a study run.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct StudyConfig {
    /// Generator configuration (scale, seed).
    pub gen: GenConfig,
    /// Pipeline configuration (scanner removal).
    pub pipeline: PipelineConfig,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}


/// One analyzed dataset.
#[derive(Debug)]
pub struct DatasetAnalysis {
    /// The dataset spec used.
    pub spec: DatasetSpec,
    /// Per-trace analyses, ordered by (pass, subnet).
    pub traces: Vec<TraceAnalysis>,
}

impl DatasetAnalysis {
    /// Ingest damage aggregated across every trace of the dataset.
    pub fn ingest_health(&self) -> IngestHealth {
        let mut h = IngestHealth::default();
        for t in &self.traces {
            h.absorb(&t.health);
        }
        h
    }

    /// Pipeline metrics aggregated across every trace of the dataset.
    pub fn pipeline_metrics(&self) -> PipelineMetrics {
        let mut m = PipelineMetrics::default();
        for t in &self.traces {
            m.absorb(&t.metrics);
        }
        m
    }
}

/// Generate and analyze several datasets over one global work queue.
///
/// Every trace of every dataset is a single work item; one thread pool
/// drains the whole list. Packets are dropped as soon as each trace is
/// analyzed, bounding memory. Results land in per-dataset bins and are
/// sorted by global work index, which is monotone in (pass, subnet)
/// within a dataset — so per-trace ordering (and content) is identical
/// to running each dataset alone.
pub fn run_datasets(specs: &[DatasetSpec], config: &StudyConfig) -> Vec<DatasetAnalysis> {
    let sites: Vec<_> = specs.iter().map(|s| build_site(s, &config.gen)).collect();
    // Global work list of (dataset index, subnet, pass).
    let mut work = Vec::new();
    for (di, spec) in specs.iter().enumerate() {
        for pass in 1..=spec.passes {
            for subnet in spec.monitored {
                if spec.name == "D4" && pass == 2 && subnet % 2 == 0 {
                    continue;
                }
                work.push((di, subnet, pass));
            }
        }
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let threads = effective_threads(config.threads, config.pipeline.shards, cores, work.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let bins: Vec<Mutex<Vec<(usize, TraceAnalysis)>>> =
        specs.iter().map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // One arena per worker, reused across traces: after the
                // first trace its buffers are warm and generation stops
                // allocating entirely.
                let mut arena = ent_pcap::PacketArena::unbounded();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(di, subnet, pass)) = work.get(i) else {
                        break;
                    };
                    let Some((spec, (site, wan))) = specs.get(di).zip(sites.get(di)) else {
                        break;
                    };
                    let gt = StageTimer::start();
                    let (meta, gen) =
                        generate_trace_into(site, wan, spec, subnet, pass, &config.gen, &mut arena);
                    let gen_ns = gt.elapsed_ns();
                    let mut analysis = analyze_packets(
                        &meta,
                        arena.captured_frames(),
                        &config.pipeline,
                        arena.len(),
                    );
                    analysis
                        .metrics
                        .generate
                        .add(gen_ns, arena.len() as u64, arena.wire_bytes());
                    // The generation sub-stages (all nested inside `generate`):
                    // session emission, the global sort, and the capture tap.
                    analysis
                        .metrics
                        .gen_synth
                        .add(gen.synth_ns, gen.synth_packets, gen.synth_bytes);
                    analysis
                        .metrics
                        .gen_sort
                        .add(gen.sort_ns, gen.sorted_packets, 0);
                    analysis
                        .metrics
                        .gen_tap
                        .add(gen.tap_ns, arena.len() as u64, gen.captured_bytes);
                    // Per-trace worker wall time covers the whole item:
                    // generation included, not just analysis.
                    analysis.metrics.trace_wall_ns += gen_ns;
                    // A worker that panicked poisons the lock; the analysis
                    // it produced is still valid, so recover the guard.
                    if let Some(bin) = bins.get(di) {
                        bin.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((i, analysis));
                    }
                }
            });
        }
    });
    specs
        .iter()
        .zip(bins)
        .map(|(spec, bin)| {
            let mut results = bin.into_inner().unwrap_or_else(|e| e.into_inner());
            results.sort_by_key(|(i, _)| *i);
            DatasetAnalysis {
                spec: *spec,
                traces: results.into_iter().map(|(_, a)| a).collect(),
            }
        })
        .collect()
}

/// Compose trace-level worker threads with intra-trace shard fan-out.
///
/// Every worker thread runs its own shard pool, so the run's total
/// parallelism is `threads × shards`; letting both knobs multiply past
/// the core count only adds contention. The rule: cap the *thread* side
/// so `threads × max(shards, 1) ≤ cores` (never below 1 thread), then
/// cap at the number of work items. An explicit `requested` count is
/// honored up to that cap; `requested == 0` means "use the cap".
/// Thread count never affects results — only wall time — so capping is
/// always safe.
pub fn effective_threads(requested: usize, shards: usize, cores: usize, work_items: usize) -> usize {
    let budget = (cores.max(1) / shards.max(1)).max(1);
    let want = if requested == 0 { budget } else { requested.min(budget) };
    want.min(work_items.max(1))
}

/// Pick a shard count for a run where the user fixed `--threads` but said
/// nothing about shards: spend the cores the thread cap leaves idle on
/// intra-trace fan-out. `requested_threads == 0` (auto threads) returns 0
/// — trace-level workers already soak every core, and stacking shard
/// pools under them only adds contention. Otherwise the leftover budget
/// is `cores / threads`; two or more idle cores per worker buy that many
/// shards (capped at 8, the top of the scaling gate's measured curve),
/// fewer mean serial ingest is the right call. Callers that take an
/// explicit shard request (`--shards N`, including `--shards 0` as the
/// serial escape hatch) must bypass this entirely — shard count is a
/// bench-comparability key, so an implicit default must never override an
/// explicit one.
pub fn auto_shards(requested_threads: usize, cores: usize) -> usize {
    if requested_threads == 0 {
        return 0;
    }
    let leftover = cores.max(1) / requested_threads.max(1);
    if leftover >= 2 {
        leftover.min(8)
    } else {
        0
    }
}

/// Generate and analyze one dataset, trace-parallel.
pub fn run_dataset(spec: &DatasetSpec, config: &StudyConfig) -> DatasetAnalysis {
    run_datasets(std::slice::from_ref(spec), config)
        .pop()
        .unwrap_or_else(|| DatasetAnalysis {
            spec: *spec,
            traces: Vec::new(),
        })
}

/// Run the whole five-dataset study over one shared work queue.
pub fn run_study(config: &StudyConfig) -> Vec<DatasetAnalysis> {
    run_datasets(&all_datasets(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StudyConfig {
        StudyConfig {
            gen: GenConfig {
                scale: 0.003,
                seed: 5,
                hosts_per_subnet: Some(8),
            },
            ..Default::default()
        }
    }

    /// Two shrunken datasets — enough work items to exercise the global
    /// queue across a dataset boundary while staying test-sized.
    fn two_small_specs() -> Vec<DatasetSpec> {
        let specs = all_datasets();
        let mut a = specs[0];
        a.monitored = (0..3).into();
        let mut b = specs[1];
        b.monitored = (0..2).into();
        vec![a, b]
    }

    #[test]
    fn effective_threads_caps_threads_times_shards_at_cores() {
        // Auto (requested 0): divide the core budget by the shard count.
        assert_eq!(effective_threads(0, 0, 8, 100), 8);
        assert_eq!(effective_threads(0, 1, 8, 100), 8);
        assert_eq!(effective_threads(0, 4, 8, 100), 2);
        assert_eq!(effective_threads(0, 8, 8, 100), 1);
        // Explicit requests are honored up to the budget, never above.
        assert_eq!(effective_threads(4, 4, 16, 100), 4);
        assert_eq!(effective_threads(8, 4, 16, 100), 4);
        assert_eq!(effective_threads(2, 4, 16, 100), 2);
        // Never below one thread, even oversharded.
        assert_eq!(effective_threads(1, 64, 4, 100), 1);
        assert_eq!(effective_threads(0, 64, 4, 100), 1);
        // Never more threads than work items.
        assert_eq!(effective_threads(0, 0, 16, 3), 3);
        assert_eq!(effective_threads(8, 0, 16, 3), 3);
        // Degenerate inputs stay sane.
        assert_eq!(effective_threads(0, 0, 0, 0), 1);
    }

    #[test]
    fn auto_shards_spends_leftover_cores_only() {
        // Auto threads already soak the machine: no implicit shards.
        assert_eq!(auto_shards(0, 16), 0);
        // Pinned threads with idle cores: shard the leftover, capped at 8.
        assert_eq!(auto_shards(1, 8), 8);
        assert_eq!(auto_shards(1, 16), 8);
        assert_eq!(auto_shards(2, 8), 4);
        assert_eq!(auto_shards(4, 8), 2);
        // Fewer than two idle cores per worker: serial ingest.
        assert_eq!(auto_shards(1, 1), 0);
        assert_eq!(auto_shards(8, 8), 0);
        assert_eq!(auto_shards(6, 8), 0);
        // Degenerate inputs stay sane.
        assert_eq!(auto_shards(3, 0), 0);
    }

    #[test]
    fn run_dataset_produces_one_analysis_per_trace() {
        let specs = all_datasets();
        let da = run_dataset(&specs[0], &tiny());
        assert_eq!(da.traces.len(), 22);
        assert!(da.traces.iter().all(|t| t.packets > 0));
        // Deterministic ordering by (pass, subnet).
        assert_eq!(da.traces[0].subnet, 0);
        assert_eq!(da.traces[21].subnet, 21);
    }

    #[test]
    fn parallel_equals_serial() {
        let specs = all_datasets();
        let mut spec = specs[0];
        spec.monitored = (0..4).into();
        let par = run_dataset(
            &spec,
            &StudyConfig {
                threads: 4,
                ..tiny()
            },
        );
        let ser = run_dataset(
            &spec,
            &StudyConfig {
                threads: 1,
                ..tiny()
            },
        );
        assert_eq!(par.traces.len(), ser.traces.len());
        for (a, b) in par.traces.iter().zip(&ser.traces) {
            assert_eq!(a.packets, b.packets);
            assert_eq!(a.conns.len(), b.conns.len());
            assert_eq!(a.subnet, b.subnet);
            assert_eq!(a.health, b.health);
        }
    }

    #[test]
    fn parallel_equals_serial_study_wide() {
        // The global work queue interleaves traces from different
        // datasets across workers; results must still be identical to a
        // serial run, trace for trace.
        let specs = two_small_specs();
        let par = run_datasets(
            &specs,
            &StudyConfig {
                threads: 4,
                ..tiny()
            },
        );
        let ser = run_datasets(
            &specs,
            &StudyConfig {
                threads: 1,
                ..tiny()
            },
        );
        assert_eq!(par.len(), ser.len());
        for (dp, ds) in par.iter().zip(&ser) {
            assert_eq!(dp.spec.name, ds.spec.name);
            assert_eq!(dp.traces.len(), ds.traces.len());
            for (a, b) in dp.traces.iter().zip(&ds.traces) {
                assert_eq!((a.subnet, a.pass), (b.subnet, b.pass));
                assert_eq!(a.packets, b.packets);
                assert_eq!(a.conns.len(), b.conns.len());
                assert_eq!(a.health, b.health);
                assert_eq!(a.bytes_per_second, b.bytes_per_second);
            }
        }
    }

    #[test]
    fn metrics_event_counts_are_thread_count_invariant() {
        // Wall times legitimately vary run to run; event and byte counts
        // must not. The signature excludes every timer field.
        let specs = two_small_specs();
        let par = run_datasets(
            &specs,
            &StudyConfig {
                threads: 4,
                ..tiny()
            },
        );
        let ser = run_datasets(
            &specs,
            &StudyConfig {
                threads: 1,
                ..tiny()
            },
        );
        let mut mp = PipelineMetrics::default();
        let mut ms = PipelineMetrics::default();
        for d in &par {
            mp.absorb(&d.pipeline_metrics());
        }
        for d in &ser {
            ms.absorb(&d.pipeline_metrics());
        }
        assert_eq!(mp.events_signature(), ms.events_signature());
        assert!(mp.packets() > 0);
        assert!(mp.generate.events > 0);
        assert!(mp.finalize.events > 0);
    }
}
