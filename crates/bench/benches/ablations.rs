//! Ablation benchmarks for the design choices DESIGN.md calls out.

// Bench harnesses are not public API and may abort on setup failure.
#![allow(missing_docs, clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use ent_bench::{bench_gen_config, raw_trace};
use ent_core::run::{run_dataset, StudyConfig};
use ent_core::{analyze_trace, PipelineConfig};
use ent_gen::dataset::all_datasets;
use ent_pcap::{Tap, Trace};
use std::hint::black_box;

/// Scanner removal on vs off: cost of the heuristic, and (asserted once)
/// its effect on connection counts — the paper's 4-18% removal band is
/// checked in EXPERIMENTS.md; here we require a nonzero effect.
fn ablation_scanner_removal(c: &mut Criterion) {
    let trace = ent_bench::scanned_trace();
    let with = analyze_trace(trace, &PipelineConfig::default());
    let without = analyze_trace(
        trace,
        &PipelineConfig {
            keep_scanners: true,
            ..Default::default()
        },
    );
    assert!(
        without.conns.len() > with.conns.len(),
        "scanner removal must drop connections ({} vs {})",
        without.conns.len(),
        with.conns.len()
    );
    let mut g = c.benchmark_group("ablation_scanners");
    g.bench_function("removal_on", |b| {
        b.iter(|| black_box(analyze_trace(trace, &PipelineConfig::default()).conns.len()))
    });
    g.bench_function("removal_off", |b| {
        b.iter(|| {
            black_box(
                analyze_trace(
                    trace,
                    &PipelineConfig {
                        keep_scanners: true,
                        ..Default::default()
                    },
                )
                .conns
                .len(),
            )
        })
    });
    g.finish();
}

/// Host-pair de-duplication vs raw connection counting for failure rates
/// (the paper's §5 methodology point about automated retries).
fn ablation_host_pair_counting(c: &mut Criterion) {
    let trace = raw_trace();
    let analysis = analyze_trace(trace, &PipelineConfig::default());
    let conns = analysis.conns;
    let mut g = c.benchmark_group("ablation_counting");
    g.bench_function("raw_connection_success", |b| {
        b.iter(|| {
            let total = conns.iter().filter(|c| c.proto() == ent_flow::Proto::Tcp).count();
            let ok = conns
                .iter()
                .filter(|c| c.proto() == ent_flow::Proto::Tcp && c.successful())
                .count();
            black_box(ok as f64 / total.max(1) as f64)
        })
    });
    g.bench_function("host_pair_success", |b| {
        b.iter(|| {
            let mut pairs: std::collections::HashMap<(u32, u32), bool> = Default::default();
            for c in conns.iter().filter(|c| c.proto() == ent_flow::Proto::Tcp) {
                let hp = c.summary.key.host_pair();
                let e = pairs.entry((hp.0 .0, hp.1 .0)).or_insert(false);
                *e = *e || c.successful();
            }
            let ok = pairs.values().filter(|v| **v).count();
            black_box(ok as f64 / pairs.len().max(1) as f64)
        })
    });
    g.finish();
}

/// Snaplen 68 vs full capture: which analyses survive header-only traces,
/// and what the truncation costs/saves in analysis time.
fn ablation_snaplen(c: &mut Criterion) {
    let full = raw_trace();
    let mut tap = Tap::new(68);
    let truncated = Trace {
        meta: ent_pcap::TraceMeta {
            snaplen: 68,
            ..full.meta.clone()
        },
        packets: tap.capture_all(full.packets.iter().cloned()),
    };
    let a = analyze_trace(full, &PipelineConfig::default());
    let b = analyze_trace(&truncated, &PipelineConfig::default());
    assert!(!a.http.is_empty() && b.http.is_empty(), "payload analyses need snaplen");
    assert!(
        !b.conns.is_empty(),
        "transport analyses must survive header-only capture"
    );
    let mut g = c.benchmark_group("ablation_snaplen");
    g.bench_function("full_payload", |bch| {
        bch.iter(|| black_box(analyze_trace(full, &PipelineConfig::default()).conns.len()))
    });
    g.bench_function("snaplen_68", |bch| {
        bch.iter(|| black_box(analyze_trace(&truncated, &PipelineConfig::default()).conns.len()))
    });
    g.finish();
}

/// Parallel vs serial dataset analysis (the merge-correctness cost model).
fn ablation_parallelism(c: &mut Criterion) {
    let mut spec = all_datasets().remove(0);
    let start = spec.monitored.start;
    spec.monitored = (start..start + 6).into();
    let mut g = c.benchmark_group("ablation_parallelism");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let da = run_dataset(
                    &spec,
                    &StudyConfig {
                        gen: bench_gen_config(),
                        threads,
                        ..Default::default()
                    },
                );
                black_box(da.traces.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_scanner_removal,
    ablation_host_pair_counting,
    ablation_snaplen,
    ablation_parallelism
);
criterion_main!(ablations);
