//! One Criterion bench per paper *figure*, with once-per-process shape
//! assertions mirroring EXPERIMENTS.md.

// Bench harnesses are not public API and may abort on setup failure.
#![allow(missing_docs, clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use ent_bench::{datasets, payload_datasets};
use ent_core::analyses::*;
use ent_proto::AppProtocol;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let ds = datasets();
    // Shape: name services lead connections but not bytes.
    let mix = appmix::appmix(&ds[1].traces);
    let name = mix
        .shares
        .iter()
        .find(|(k, _)| *k == ent_proto::Category::Name)
        .expect("dataset 1 always produces name-service traffic")
        .1;
    assert!(name.conns_pct() > 30.0 && name.bytes_pct() < 3.0);
    c.bench_function("fig1_application_mix", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, appmix::appmix(&d.traces)))
                .collect();
            black_box((appmix::figure1(&rows, true), appmix::figure1(&rows, false)))
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let ds = datasets();
    let loc = locality::locality(&ds[2].traces);
    // Most hosts have a modest fan-out (the SrvLoc directory-agent tail is
    // probabilistic at bench scale, so only the body is asserted).
    assert!(loc.fan_out_ent.quantile(0.9).unwrap_or(0.0) < 60.0);
    c.bench_function("fig2_fan_in_out", |b| {
        b.iter(|| {
            let l2 = locality::locality(&ds[2].traces);
            let l3 = locality::locality(&ds[3].traces);
            let refs = vec![("D2", &l2), ("D3", &l3)];
            black_box(locality::figure2(&refs))
        })
    });
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let ds = payload_datasets();
    // WAN fan-out exceeds enterprise fan-out (paper: ~an order of magnitude).
    let (ent, wan) = web::http_fanout(&ds[2].traces);
    if let (Some(e), Some(w)) = (ent.quantile(0.9), wan.quantile(0.9)) {
        assert!(w > e, "wan fan-out {w} must exceed ent {e}");
    }
    c.bench_function("fig3_http_fanout", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| {
                    (
                        d.spec.name,
                        web::http_fanout(&d.traces),
                        web::reply_sizes(&d.traces),
                    )
                })
                .collect();
            black_box(web::figures34(&rows))
        })
    });
}

fn bench_fig5_fig6(c: &mut Criterion) {
    let ds = datasets();
    // WAN SMTP lasts much longer than internal (RTT-bound, paper ~10x).
    let d1 = email::durations_and_sizes(&ds[1].traces, AppProtocol::Smtp, true);
    if let (Some(e), Some(w)) = (d1.dur_ent.median(), d1.dur_wan.median()) {
        assert!(w > e * 2.0, "wan SMTP {w}s !>> ent {e}s");
    }
    c.bench_function("fig5_fig6_email_durations_sizes", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| {
                    (
                        d.spec.name,
                        email::durations_and_sizes(&d.traces, AppProtocol::Smtp, true),
                    )
                })
                .collect();
            black_box(email::figures56("F5", "F6", &rows))
        })
    });
}

fn bench_fig7_fig8(c: &mut Criterion) {
    let ds = payload_datasets();
    // Dual-mode NFS sizes: requests cluster small, replies reach ~8 KB.
    let dist = netfile::netfile_distributions(&ds[0].traces);
    if dist.nfs_reply_sizes.n() > 50 {
        let p95 = dist.nfs_reply_sizes.quantile(0.95).expect("n > 50 implies a p95");
        assert!(p95 > 4_000.0);
        let p50 = dist.nfs_req_sizes.quantile(0.5).expect("n > 50 implies a median");
        assert!(p50 < 500.0);
    }
    c.bench_function("fig7_fig8_netfile_distributions", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, netfile::netfile_distributions(&d.traces)))
                .collect();
            black_box(netfile::figures78(&rows))
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    let ds = datasets();
    let d4 = ds.iter().find(|d| d.spec.name == "D4").expect("D4 present");
    let u = load::utilization(&d4.traces);
    // Peaks shrink as the averaging window grows; typical usage is far
    // below peak (the paper's §6 point).
    for t in &u.per_trace {
        assert!(t.peak_1s >= t.peak_10s && t.peak_10s >= t.peak_60s);
    }
    c.bench_function("fig9_utilization", |b| {
        b.iter(|| {
            let u = load::utilization(&d4.traces);
            black_box((u.figure9a(), u.figure9b()))
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let ds = datasets();
    c.bench_function("fig10_retransmission_rates", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, load::retx_rates(&d.traces, 100)))
                .collect();
            black_box(load::figure10(&rows))
        })
    });
}

fn bench_findings(c: &mut Criterion) {
    let ds = payload_datasets();
    let traces: Vec<_> = ds.iter().flat_map(|d| d.traces.iter()).cloned().collect();
    c.bench_function("table5_findings", |b| {
        b.iter(|| black_box(findings::render(&findings::findings(&traces))))
    });
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2,
    bench_fig3_fig4,
    bench_fig5_fig6,
    bench_fig7_fig8,
    bench_fig9,
    bench_fig10,
    bench_findings
);
criterion_main!(figures);
