//! Pipeline-throughput benchmarks: generation, packet parsing, flow
//! tracking, full per-trace analysis, pcap I/O and anonymization.

// Bench harnesses are not public API and may abort on setup failure.
#![allow(missing_docs, clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ent_bench::{bench_gen_config, raw_trace};
use ent_core::{analyze_trace, PipelineConfig, PipelineMetrics, StageTimer};
use ent_flow::{CollectSummaries, ConnTable, TableConfig};
use ent_gen::build::{build_site, generate_trace, generate_trace_into};
use ent_gen::dataset::all_datasets;
use ent_wire::{Packet, Timestamp};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let specs = all_datasets();
    let config = bench_gen_config();
    let (site, wan) = build_site(&specs[0], &config);
    let pkts = raw_trace().packets.len() as u64;
    let mut g = c.benchmark_group("generation");
    g.throughput(Throughput::Elements(pkts));
    g.bench_function("synthesize_trace", |b| {
        b.iter(|| black_box(generate_trace(&site, &wan, &specs[0], 3, 1, &config)))
    });
    // The zero-copy study path: emit + sort + tap inside one reused
    // arena, no owned-packet materialization. The delta against
    // `synthesize_trace` is what `captured_packets()` costs; the delta
    // against the old baseline is the arena rework's contribution.
    g.bench_function("generate_trace_arena", |b| {
        let mut arena = ent_pcap::PacketArena::unbounded();
        b.iter(|| {
            let (meta, timing) =
                generate_trace_into(&site, &wan, &specs[0], 3, 1, &config, &mut arena);
            black_box((meta, arena.len(), timing.captured_bytes))
        })
    });
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let trace = raw_trace();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("parse_packets", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for p in &trace.packets {
                if Packet::parse(&p.frame).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.finish();
}

fn bench_flow_tracking(c: &mut Criterion) {
    let trace = raw_trace();
    let mut g = c.benchmark_group("flow");
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("connection_tracking", |b| {
        b.iter(|| {
            let mut table = ConnTable::new(TableConfig::default());
            let mut h = CollectSummaries::default();
            for p in &trace.packets {
                if let Ok(pkt) = Packet::parse(&p.frame) {
                    table.ingest(&pkt, p.ts, &mut h);
                }
            }
            table.finish(Timestamp::from_secs(4_000), &mut h);
            black_box(h.summaries.len())
        })
    });
    // The SipHash reference table: the delta against `connection_tracking`
    // is the hashing overhaul's contribution in isolation.
    g.bench_function("connection_tracking_std_hash", |b| {
        b.iter(|| {
            let mut table = ConnTable::with_std_hasher(TableConfig::default());
            let mut h = CollectSummaries::default();
            for p in &trace.packets {
                if let Ok(pkt) = Packet::parse(&p.frame) {
                    table.ingest(&pkt, p.ts, &mut h);
                }
            }
            table.finish(Timestamp::from_secs(4_000), &mut h);
            black_box(h.summaries.len())
        })
    });
    g.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let trace = raw_trace();
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("analyze_trace_full", |b| {
        b.iter(|| black_box(analyze_trace(trace, &PipelineConfig::default())))
    });
    // The zero-copy ingest path: same workload serialized as pcap bytes,
    // analyzed straight off the buffer with the reusable record cursor
    // (no intermediate per-packet Vec materialization).
    let mut pcap_buf = Vec::new();
    trace.write_pcap(&mut pcap_buf).expect("write pcap");
    g.bench_function("analyze_capture_streaming", |b| {
        b.iter(|| {
            black_box(
                ent_core::analyze_capture(
                    &pcap_buf,
                    trace.meta.clone(),
                    &PipelineConfig::default(),
                )
                .expect("capture analyzes"),
            )
        })
    });
    // The fused parse+ingest study path: zero-copy frame views fed to
    // analyze_packets, where the Engine dissects each frame once and
    // feeds the connection table in the same pass with stride-sampled
    // stage clocks (no per-packet Instant reads). The delta against
    // `connection_tracking` is what the full analyzer + instrumentation
    // stack costs on top of bare flow tracking; this is the loop the
    // BENCH gate's throughput floor rides on.
    g.bench_function("analyze_trace_fused", |b| {
        b.iter(|| {
            let frames = trace.packets.iter().map(|p| (p.ts, &*p.frame, p.orig_len));
            black_box(ent_core::pipeline::analyze_packets(
                &trace.meta,
                frames,
                &PipelineConfig::default(),
                trace.packets.len(),
            ))
        })
    });
    g.finish();
}

fn bench_pcap_io(c: &mut Criterion) {
    let trace = raw_trace();
    let mut buf = Vec::new();
    trace.write_pcap(&mut buf).expect("write");
    let mut g = c.benchmark_group("pcap");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            trace.write_pcap(&mut out).expect("write");
            black_box(out.len())
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| {
            let t =
                ent_pcap::Trace::read_pcap(&buf[..], trace.meta.clone()).expect("read");
            black_box(t.packets.len())
        })
    });
    g.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    // The observability layer's per-packet cost: two timer laps and two
    // StageStat updates. Measured standalone so a future perf PR can tell
    // analysis regressions from instrumentation overhead.
    let mut g = c.benchmark_group("metrics");
    g.throughput(Throughput::Elements(1));
    g.bench_function("per_packet_lap_chain", |b| {
        let mut m = PipelineMetrics::default();
        let mut t = StageTimer::start();
        b.iter(|| {
            m.frame_parse.add(t.lap(), 1, 64);
            m.flow_ingest.add(t.lap(), 1, 64);
            black_box(m.flow_ingest.events)
        })
    });
    g.finish();
}

fn bench_anonymize(c: &mut Criterion) {
    let trace = raw_trace();
    let mut g = c.benchmark_group("anonymize");
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("prefix_preserving_trace", |b| {
        b.iter(|| black_box(ent_anon::anonymize_trace(trace, "bench-key").packets.len()))
    });
    g.finish();
}

criterion_group!(
    pipeline,
    bench_generation,
    bench_parse,
    bench_flow_tracking,
    bench_full_analysis,
    bench_pcap_io,
    bench_metrics_overhead,
    bench_anonymize
);
criterion_main!(pipeline);
