//! One Criterion bench per paper *table*: each measures regenerating the
//! table's data from the per-trace analyses (the paper's own aggregation
//! step), and asserts the headline shape once per process so a silent
//! regression cannot hide behind timing noise.

// Bench harnesses are not public API and may abort on setup failure.
#![allow(missing_docs, clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use ent_bench::{datasets, payload_datasets};
use ent_core::analyses::*;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let ds = datasets();
    c.bench_function("table1_dataset_characteristics", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| summary::dataset_summary(d.spec.name, &d.traces, d.spec.snaplen))
                .collect();
            black_box(summary::table1(&rows))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let ds = datasets();
    // Shape check: IP dominates every dataset, IPX leads the non-IP mix
    // in D0-D2 (paper Table 2).
    for d in ds.iter().take(3) {
        let b = netlayer::netlayer(&d.traces);
        assert!(b.ip_pct > 90.0, "{}: IP {:.0}%", d.spec.name, b.ip_pct);
        assert!(b.ipx_pct > b.arp_pct, "{}: IPX must lead non-IP", d.spec.name);
    }
    c.bench_function("table2_network_layer", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, netlayer::netlayer(&d.traces)))
                .collect();
            black_box(netlayer::table2(&rows))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let ds = datasets();
    // Shape: UDP dominates connections everywhere; TCP dominates bytes in
    // aggregate (individual subnet-reduced slices can be swung by one
    // UDP-NFS heavy hitter, as real vantage points are).
    let (mut tcp_b, mut udp_b) = (0.0, 0.0);
    for d in ds.iter() {
        let t = transport::transport(&d.traces);
        assert!(t.udp_conns_pct > t.tcp_conns_pct, "{}: UDP conns", d.spec.name);
        tcp_b += t.tcp_bytes_pct / 100.0 * t.bytes as f64;
        udp_b += t.udp_bytes_pct / 100.0 * t.bytes as f64;
    }
    assert!(tcp_b > udp_b, "TCP must dominate bytes in aggregate");
    c.bench_function("table3_transport_breakdown", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, transport::transport(&d.traces)))
                .collect();
            black_box(transport::table3(&rows))
        })
    });
}

fn bench_table6(c: &mut Criterion) {
    let ds = payload_datasets();
    c.bench_function("table6_automated_http_clients", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, web::automated_clients(&d.traces)))
                .collect();
            black_box(web::table6(&rows))
        })
    });
}

fn bench_table7(c: &mut Criterion) {
    let ds = payload_datasets();
    let traces: Vec<_> = ds.iter().flat_map(|d| d.traces.iter()).cloned().collect();
    c.bench_function("table7_http_content_types", |b| {
        b.iter(|| black_box(web::table7(&web::content_types(&traces))))
    });
}

fn bench_table8(c: &mut Criterion) {
    let ds = datasets();
    // D0 shows cleartext IMAP; later datasets must not (the policy change).
    let v0 = email::email_volumes(&ds[0].traces);
    let v1 = email::email_volumes(&ds[1].traces);
    assert!(v0.imap4 > 0 && v1.imap4 == 0, "IMAP policy change");
    c.bench_function("table8_email_volumes", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, email::email_volumes(&d.traces)))
                .collect();
            black_box(email::table8(&rows))
        })
    });
}

fn bench_table9(c: &mut Criterion) {
    let ds = payload_datasets();
    for d in &ds {
        let svc = windows::windows_success(&d.traces);
        let nbssn = svc[0].1.successful_pct;
        let cifs = svc[1].1.successful_pct;
        assert!(
            nbssn > cifs,
            "{}: NBSSN ({nbssn:.0}%) must beat CIFS ({cifs:.0}%)",
            d.spec.name
        );
    }
    c.bench_function("table9_windows_success", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, windows::windows_success(&d.traces)))
                .collect();
            black_box(windows::table9(&rows))
        })
    });
}

fn bench_table10(c: &mut Criterion) {
    let ds = payload_datasets();
    c.bench_function("table10_cifs_commands", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, windows::cifs_breakdown(&d.traces)))
                .collect();
            black_box(windows::table10(&rows))
        })
    });
}

fn bench_table11(c: &mut Criterion) {
    let ds = payload_datasets();
    c.bench_function("table11_dcerpc_functions", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, windows::rpc_breakdown(&d.traces)))
                .collect();
            black_box(windows::table11(&rows))
        })
    });
}

fn bench_table12_13_14(c: &mut Criterion) {
    let ds = datasets();
    let pds = payload_datasets();
    c.bench_function("table12_netfile_sizes", |b| {
        b.iter(|| {
            let rows: Vec<_> = ds
                .iter()
                .map(|d| (d.spec.name, netfile::netfile_sizes(&d.traces)))
                .collect();
            black_box(netfile::table12(&rows))
        })
    });
    c.bench_function("table13_nfs_requests", |b| {
        b.iter(|| {
            let rows: Vec<_> = pds
                .iter()
                .map(|d| (d.spec.name, netfile::nfs_breakdown(&d.traces)))
                .collect();
            black_box(netfile::op_table("Table 13", &rows))
        })
    });
    c.bench_function("table14_ncp_requests", |b| {
        b.iter(|| {
            let rows: Vec<_> = pds
                .iter()
                .map(|d| (d.spec.name, netfile::ncp_breakdown(&d.traces)))
                .collect();
            black_box(netfile::op_table("Table 14", &rows))
        })
    });
}

fn bench_table15(c: &mut Criterion) {
    let ds = datasets();
    let traces: Vec<_> = ds.iter().flat_map(|d| d.traces.iter()).cloned().collect();
    let a = backup::backup_analysis(&traces);
    assert!(a.veritas_ctrl.0 >= a.veritas_data.0, "ctrl conns outnumber data conns");
    if a.veritas_data.0 > 0 {
        assert!(a.veritas_data.1 > a.veritas_ctrl.1 * 20, "data bytes dwarf ctrl bytes");
    }
    c.bench_function("table15_backup", |b| {
        b.iter(|| black_box(backup::table15(&backup::backup_analysis(&traces))))
    });
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table6,
    bench_table7,
    bench_table8,
    bench_table9,
    bench_table10,
    bench_table11,
    bench_table12_13_14,
    bench_table15
);
criterion_main!(tables);
