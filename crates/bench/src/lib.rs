//! Shared fixtures for the benchmark harness.
//!
//! Benchmarks regenerate every table and figure of the paper; fixtures are
//! built once per process and shared across benches, so the measured cost
//! is the *analysis*, separated from generation (which has its own
//! throughput benches).
#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use ent_core::run::{run_dataset, DatasetAnalysis, StudyConfig};
use ent_gen::build::{build_site, generate_trace};
use ent_gen::dataset::all_datasets;
use ent_gen::GenConfig;
use ent_pcap::Trace;
use std::sync::OnceLock;

/// Generation scale used by the bench fixtures.
pub const BENCH_SCALE: f64 = 0.006;

/// The generator config used by all fixtures.
pub fn bench_gen_config() -> GenConfig {
    GenConfig {
        scale: BENCH_SCALE,
        seed: 2_005,
        hosts_per_subnet: Some(12),
    }
}

/// Analyzed miniatures of all five datasets (subnet-reduced), built once.
pub fn datasets() -> &'static Vec<DatasetAnalysis> {
    static CELL: OnceLock<Vec<DatasetAnalysis>> = OnceLock::new();
    CELL.get_or_init(|| {
        let config = StudyConfig {
            gen: bench_gen_config(),
            ..Default::default()
        };
        all_datasets()
            .into_iter()
            .map(|mut spec| {
                // Keep 8 subnets per dataset: enough to cover every server
                // vantage the analyses depend on.
                let start = spec.monitored.start;
                spec.monitored = (start..(start + 8).min(spec.monitored.end)).into();
                run_dataset(&spec, &config)
            })
            .collect()
    })
}

/// The full-payload datasets among [`datasets`].
pub fn payload_datasets() -> Vec<&'static DatasetAnalysis> {
    datasets()
        .iter()
        .filter(|d| d.spec.snaplen >= 1500)
        .collect()
}

/// One raw (unanalyzed) trace for pipeline-throughput benches: D0's
/// NFS/NCP subnet, full payload.
pub fn raw_trace() -> &'static Trace {
    static CELL: OnceLock<Trace> = OnceLock::new();
    CELL.get_or_init(|| {
        let specs = all_datasets();
        let config = bench_gen_config();
        let (site, wan) = build_site(&specs[0], &config);
        generate_trace(&site, &wan, &specs[0], 3, 1, &config)
    })
}

/// A trace guaranteed to contain detectable scanner traffic (scan sweeps
/// are probabilistic per trace, so this searches D1's subnets/passes and
/// memoizes the first hit).
pub fn scanned_trace() -> &'static Trace {
    static CELL: OnceLock<Trace> = OnceLock::new();
    CELL.get_or_init(|| {
        let specs = all_datasets();
        let config = bench_gen_config();
        let (site, wan) = build_site(&specs[1], &config);
        for pass in 1..=2u8 {
            for subnet in 0..22u16 {
                let t = generate_trace(&site, &wan, &specs[1], subnet, pass, &config);
                let a = ent_core::analyze_trace(&t, &ent_core::PipelineConfig::default());
                if a.scanner_conns_removed > 0 {
                    return t;
                }
            }
        }
        panic!("no swept trace in 44 attempts — scanner rates broken");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_materialize() {
        assert_eq!(datasets().len(), 5);
        assert_eq!(payload_datasets().len(), 3);
        assert!(!raw_trace().packets.is_empty());
    }
}
