//! # ent-criterion — vendored minimal benchmark harness
//!
//! Implements the small slice of the `criterion` API this workspace's
//! benches use (`criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter`, `Throughput`) on plain
//! `std::time::Instant`, so `cargo bench` runs with no network-fetched
//! dependencies. Statistics are intentionally simple — warmup, a fixed
//! sample count, and a median-of-samples report — because the benches
//! here are regression *smoke tests*, not publication-grade measurements.
//!
//! Environment knobs:
//! * `ENT_BENCH_SAMPLES` — samples per benchmark (default 10).
//! * `ENT_BENCH_MIN_ITERS` — iterations folded into one sample (default
//!   adaptive: enough to exceed ~5 ms per sample).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (per-iteration volume).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`];
/// `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Time `routine`, collecting `sample_count` samples after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count giving ≥ ~5 ms
        // per sample so Instant quantization doesn't dominate.
        let mut iters: u64 = std::env::var("ENT_BENCH_MIN_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if iters == 0 {
            iters = 1;
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let dt = t0.elapsed();
                if dt >= Duration::from_millis(5) || iters >= 1 << 20 {
                    break;
                }
                iters *= 4;
            }
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn default_samples() -> usize {
    std::env::var("ENT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput, reported as rate alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        let med = b.median();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / med.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / med.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>12.3?}{}", self.name, id, med, rate);
        self
    }

    /// End the group (parity with criterion; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count: default_samples(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevent the optimizer from eliding a value (re-export convenience; the
/// benches mostly use `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.median() >= Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    criterion_group!(demo_group, demo_bench);
    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn macros_compose() {
        demo_group();
    }
}
