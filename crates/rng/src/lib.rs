//! # ent-rng — vendored deterministic PRNG
//!
//! A minimal, dependency-free random-number module exposing the subset of
//! the `rand` crate's API that this workspace uses (`Rng`, `RngExt`,
//! `SeedableRng`, `rngs::StdRng`). The workspace aliases it as `rand` so
//! generator code keeps its idiomatic imports while the build stays fully
//! offline: the crates.io registry is not reachable in the environments
//! this repository targets, and trace generation only needs a fast,
//! seedable, *reproducible* generator — not cryptographic strength.
//!
//! The core generator is xoshiro256++ (Blackman & Vigna), seeded through
//! splitmix64 exactly as the reference implementation recommends, so a
//! given seed produces one fixed packet stream forever — the property the
//! reproduction pipeline and the fault-injection harness both rely on.
//!
//! ```
//! use ent_rng::rngs::StdRng;
//! use ent_rng::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random::<u32>(), b.random::<u32>());
//! let x: f64 = a.random();
//! assert!((0.0..1.0).contains(&x));
//! assert!(a.random_range(10..20u64) >= 10);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The one method every generator must
/// provide; everything else derives from it via [`RngExt`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from a random word stream.
pub trait FromRandom: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style widening multiply: maps the 64-bit word onto
                // [0, span) with negligible bias for the spans we use.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`Rng`], mirroring `rand::Rng`.
pub trait RngExt: Rng {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// 256 bits of state, period 2^256 − 1, passes BigCrush; ~1 ns per
    /// draw. Not cryptographically secure — fine for synthetic traffic and
    /// fault injection, which want speed and reproducibility.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed, per the xoshiro authors:
            // guarantees a non-zero, well-mixed initial state even for
            // adversarially similar seeds (0, 1, 2, ...).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.random_range(5..8usize);
            assert!((5..8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 7;
            let w = r.random_range(0..=3u32);
            assert!(w <= 3);
            let x = r.random_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&x));
            let big = r.random_range(0..u64::MAX);
            assert!(big < u64::MAX);
        }
        assert!(seen_lo && seen_hi, "range endpoints never drawn");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.random_range(5..5u32);
    }

    #[test]
    fn bool_and_int_draws() {
        let mut r = StdRng::seed_from_u64(4);
        let mut trues = 0;
        for _ in 0..10_000 {
            if r.random::<bool>() {
                trues += 1;
            }
            let _: u16 = r.random();
            let _: i64 = r.random();
        }
        assert!((4_000..6_000).contains(&trues));
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn works_through_dyn_and_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = draw(&mut r);
        let rref: &mut StdRng = &mut r;
        let _ = rref.next_u64();
    }
}
