//! Workspace file discovery.

use std::io;
use std::path::{Path, PathBuf};

/// One discovered `.rs` file with its workspace classification.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate name for files under `crates/<name>/…`, otherwise the first
    /// path component (`tests`, `examples`).
    pub crate_name: String,
    /// Whole-file test context: anything under a `tests/` or `benches/`
    /// directory, or in the top-level `tests` member.
    pub is_test_file: bool,
}

/// Directory names never descended into. `fixtures` holds the lint's own
/// seeded-violation corpus, which must not trip the self-hosted run.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "node_modules", ".claude"];

/// Recursively collect every `.rs` file under `root`, skipping
/// [`SKIP_DIRS`].
pub fn walk_workspace(root: &Path) -> io::Result<Vec<FileEntry>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<FileEntry>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ftype = entry.file_type()?;
        if ftype.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if ftype.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(classify(path, rel));
        }
    }
    Ok(())
}

fn classify(abs: PathBuf, rel: String) -> FileEntry {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        parts.first().copied().unwrap_or("").to_string()
    };
    let is_test_file = crate_name == "tests"
        || parts.iter().any(|p| *p == "tests" || *p == "benches");
    FileEntry { abs, rel, crate_name, is_test_file }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_file() {
        let e = classify(PathBuf::from("/x"), "crates/wire/src/ipv4.rs".into());
        assert_eq!(e.crate_name, "wire");
        assert!(!e.is_test_file);
    }

    #[test]
    fn classify_test_contexts() {
        assert!(classify(PathBuf::from("/x"), "tests/tests/end_to_end.rs".into()).is_test_file);
        assert!(classify(PathBuf::from("/x"), "tests/src/lib.rs".into()).is_test_file);
        assert!(classify(PathBuf::from("/x"), "crates/bench/benches/tables.rs".into()).is_test_file);
        assert!(classify(PathBuf::from("/x"), "crates/lint/tests/selfhost.rs".into()).is_test_file);
        assert!(!classify(PathBuf::from("/x"), "examples/quickstart.rs".into()).is_test_file);
    }
}
