//! A minimal hand-rolled Rust lexer.
//!
//! `ent-lint` deliberately avoids `syn` (the workspace builds offline with
//! vendored crates only), so lint checks run over a flat token stream
//! instead of a syntax tree. The lexer understands exactly as much Rust as
//! the checks need: comments (kept as tokens, since suppressions and paper
//! references live in them), string/char/byte/raw literals (skipped
//! wholesale so their contents can never masquerade as code), lifetimes
//! versus char literals, numbers, identifiers and single-char punctuation.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (the leading alnum run only; `1.5` lexes as three
    /// tokens, which is fine for every check in this crate).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Line or block comment, doc or plain.
    Comment,
    /// Any other single character.
    Punct(char),
}

/// One token: kind, 1-based line of its first character, byte span.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// 1-based source line where the token starts.
    pub line: u32,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Tok {
    /// The token's text within `src` (lossy on stray non-UTF-8 bytes).
    pub fn text<'a>(&self, src: &'a [u8]) -> std::borrow::Cow<'a, str> {
        String::from_utf8_lossy(&src[self.start..self.end])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into a token vector. Never fails: unterminated constructs run
/// to end-of-input, and unexpected bytes become punctuation tokens.
pub fn lex(src: &[u8]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = src.len();
    while i < n {
        let b = src[i];
        let start = i;
        let start_line = line;
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && src[i + 1] == b'/' => {
                while i < n && src[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Comment, line: start_line, start, end: i });
            }
            b'/' if i + 1 < n && src[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if src[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if src[i] == b'/' && i + 1 < n && src[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if src[i] == b'*' && i + 1 < n && src[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok { kind: TokKind::Comment, line: start_line, start, end: i });
            }
            b'"' => {
                i = scan_string(src, i, &mut line);
                toks.push(Tok { kind: TokKind::Str, line: start_line, start, end: i });
            }
            b'\'' => {
                // Lifetime or char literal.
                if i + 1 < n && src[i + 1] == b'\\' {
                    i = scan_char(src, i, &mut line);
                    toks.push(Tok { kind: TokKind::Char, line: start_line, start, end: i });
                } else if i + 2 < n && src[i + 2] == b'\'' {
                    i += 3;
                    toks.push(Tok { kind: TokKind::Char, line: start_line, start, end: i });
                } else if i + 1 < n && is_ident_start(src[i + 1]) {
                    i += 1;
                    while i < n && is_ident_continue(src[i]) {
                        i += 1;
                    }
                    toks.push(Tok { kind: TokKind::Lifetime, line: start_line, start, end: i });
                } else {
                    i += 1;
                    toks.push(Tok { kind: TokKind::Punct('\''), line: start_line, start, end: i });
                }
            }
            b'r' | b'b' if starts_string_prefix(src, i) => {
                i = scan_prefixed_literal(src, i, &mut line);
                let kind = if src[start] == b'b' && i > start + 1 && src[start + 1] == b'\'' {
                    TokKind::Char
                } else {
                    TokKind::Str
                };
                toks.push(Tok { kind, line: start_line, start, end: i });
            }
            _ if b.is_ascii_digit() => {
                while i < n && is_ident_continue(src[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Num, line: start_line, start, end: i });
            }
            _ if is_ident_start(b) => {
                while i < n && is_ident_continue(src[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, line: start_line, start, end: i });
            }
            _ => {
                i += 1;
                toks.push(Tok {
                    kind: TokKind::Punct(if b.is_ascii() { b as char } else { '?' }),
                    line: start_line,
                    start,
                    end: i,
                });
            }
        }
    }
    toks
}

/// Does `src[i..]` begin a raw/byte string or byte-char literal prefix
/// (`r"`, `r#`, `b"`, `b'`, `br"`, `br#`)? Plain `r`/`b` identifiers fall
/// through to ident lexing.
fn starts_string_prefix(src: &[u8], i: usize) -> bool {
    let n = src.len();
    match src[i] {
        b'r' => {
            let mut j = i + 1;
            while j < n && src[j] == b'#' {
                j += 1;
            }
            (j > i + 1 && j < n && src[j] == b'"') || (i + 1 < n && src[i + 1] == b'"')
        }
        b'b' => match src.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut j = i + 2;
                while j < n && src[j] == b'#' {
                    j += 1;
                }
                j < n && src[j] == b'"'
            }
            _ => false,
        },
        _ => false,
    }
}

/// Scan a literal starting with an `r`/`b`/`br` prefix; returns end offset.
fn scan_prefixed_literal(src: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = src.len();
    if src[i] == b'b' {
        i += 1;
        if i < n && src[i] == b'\'' {
            return scan_char(src, i, line);
        }
    }
    if i < n && src[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < n && src[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || src[i] != b'"' {
        return i;
    }
    if hashes == 0 && src[i] == b'"' && src.get(i.wrapping_sub(1)) == Some(&b'r') {
        // raw string without hashes: no escapes, ends at next quote
        i += 1;
        while i < n {
            if src[i] == b'\n' {
                *line += 1;
            }
            if src[i] == b'"' {
                return i + 1;
            }
            i += 1;
        }
        return i;
    }
    if hashes == 0 {
        // b"..." — ordinary escaping rules
        return scan_string(src, i, line);
    }
    // r#"..."# with `hashes` trailing hashes
    i += 1;
    while i < n {
        if src[i] == b'\n' {
            *line += 1;
        }
        if src[i] == b'"' && src.len() >= i + 1 + hashes && src[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#') {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scan a `"…"` string starting at the opening quote; returns end offset.
/// The returned offset is always `<= src.len()`, even when the literal is
/// cut off mid-escape at end-of-input (`"x\`): token spans must stay
/// sliceable or every downstream `Tok::text` call becomes a panic site.
fn scan_string(src: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = src.len();
    i += 1;
    while i < n {
        match src[i] {
            b'\\' => {
                // A `\` line continuation hides a newline inside the escape.
                if src.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i = (i + 2).min(n);
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan a `'…'` char literal starting at the opening quote; returns end.
/// Clamped to `src.len()` like [`scan_string`] (a trailing `'\` must not
/// produce an out-of-bounds span).
fn scan_char(src: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = src.len();
    i += 1;
    while i < n {
        match src[i] {
            b'\\' => {
                if src.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i = (i + 2).min(n);
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src.as_bytes()).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src.as_bytes())
            .iter()
            .map(|t| t.text(src.as_bytes()).into_owned())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("let x = a[1];"),
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct('='),
                TokKind::Ident,
                TokKind::Punct('['),
                TokKind::Num,
                TokKind::Punct(']'),
                TokKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_are_tokens() {
        let t = lex(b"a // ent-lint: allow(E001)\nb /* block */ c");
        assert_eq!(
            t.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![TokKind::Ident, TokKind::Comment, TokKind::Ident, TokKind::Comment, TokKind::Ident]
        );
        assert_eq!(t[2].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        // The word `unwrap` inside a string must not lex as an ident.
        assert_eq!(kinds(r#"let s = "call .unwrap() here";"#).iter().filter(|k| **k == TokKind::Ident).count(), 2);
        assert_eq!(kinds(r##"let s = r#"raw "quoted" body"#;"##).iter().filter(|k| **k == TokKind::Str).count(), 1);
        assert_eq!(kinds(r#"let b = b"bytes";"#).iter().filter(|k| **k == TokKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert_eq!(k.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(k.iter().filter(|k| **k == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_across_multiline_strings() {
        let t = lex(b"let a = \"x\ny\";\nlet b = 1;");
        let b_tok = t.iter().find(|t| t.text(b"let a = \"x\ny\";\nlet b = 1;") == "b");
        assert_eq!(b_tok.map(|t| t.line), Some(3));
    }

    #[test]
    fn line_numbers_across_backslash_continuations() {
        let src = b"let a = \"x \\\n y\";\nlet b = 1;";
        let t = lex(src);
        let b_tok = t.iter().find(|t| t.text(src) == "b");
        assert_eq!(b_tok.map(|t| t.line), Some(3));
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(k, vec![TokKind::Ident, TokKind::Comment, TokKind::Ident]);
    }

    #[test]
    fn byte_char_and_raw_ident_prefixes() {
        assert_eq!(kinds("b'\\xFF'")[0], TokKind::Char);
        // `r` and `b` as plain identifiers still lex as idents.
        assert_eq!(texts("r + b"), vec!["r", "+", "b"]);
    }

    #[test]
    fn trailing_escape_at_eof_stays_in_bounds() {
        // A literal cut off mid-escape must not overrun the buffer: every
        // token span has to stay sliceable for `Tok::text`.
        for src in ["let s = \"x\\", "let c = '\\", "b\"bytes\\", "\"\\"] {
            let toks = lex(src.as_bytes());
            for t in &toks {
                assert!(t.end <= src.len(), "span {}..{} beyond len {} in {src:?}", t.start, t.end, src.len());
                let _ = t.text(src.as_bytes()); // must not panic
            }
        }
    }

    #[test]
    fn raw_string_hash_varieties() {
        // Fewer hashes inside don't close the literal; the contents stay
        // hidden (no phantom `unwrap` ident).
        let src = r###"let s = r##"inner "# unwrap "# body"## ;"###;
        let toks = lex(src.as_bytes());
        assert!(toks.iter().all(|t| !(t.kind == TokKind::Ident && t.text(src.as_bytes()) == "unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        // Empty raw string and raw byte string.
        assert_eq!(kinds(r##"r#""#"##), vec![TokKind::Str]);
        assert_eq!(kinds(r##"br#"x"#"##), vec![TokKind::Str]);
    }

    #[test]
    fn unterminated_constructs_run_to_eof_in_bounds() {
        for src in ["r#\"never closed", "/* outer /* inner */ no close", "\"open", "r\"open"] {
            let toks = lex(src.as_bytes());
            assert_eq!(toks.len(), 1, "{src:?} should lex as one token: {toks:?}");
            assert_eq!(toks[0].end, src.len());
        }
    }

    #[test]
    fn exact_line_numbers_for_every_token() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\nr#\"raw\nraw\"# f";
        for t in lex(src.as_bytes()) {
            let expect = 1 + src.as_bytes()[..t.start].iter().filter(|&&b| b == b'\n').count() as u32;
            assert_eq!(t.line, expect, "token {:?} at {}..{}", t.kind, t.start, t.end);
        }
    }
}
