//! Symbol-aware determinism and concurrency checks: E006–E009, plus the
//! harness-crate panic sweep that extends E001 over `tests`/`bench`.
//!
//! All four lints consume the [`crate::symbols`] layer rather than raw
//! token patterns: E006 needs to know whether a receiver *is* a std
//! unordered map and whether the enclosing fn can reach a report sink;
//! E007 needs fn/impl attribution; E008 reads parsed return types; E009
//! closes over the intra-crate call graph to find every JSON key an
//! `ent-bench-*` emitter can produce. The approximations inherited from
//! the symbol layer are deliberately one-sided: an unresolved binding or
//! missed call edge silences a finding, it never invents one.

use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::report::{Code, Finding, Severity};
use crate::source::SourceFile;
use crate::symbols::{generic_args, head_ident, FileSymbols, FnItem, WorkspaceSymbols};
use std::collections::BTreeSet;

/// Methods whose results surface std-map iteration order.
const UNORDERED_ITER: [&str; 9] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "into_keys",
    "into_values",
];

/// Wall-clock / ambient-state reads flagged by E006 in analysis crates:
/// `Owner::method` pairs.
const CLOCK_READS: [(&str, &str); 5] = [
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "current"),
    ("env", "var"),
    ("env", "var_os"),
];

/// Truncating integer targets for E008's `as`-in-`Err` rule.
const TRUNCATING_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn finding(code: Code, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding { code, severity: Severity::Error, file: file.rel.clone(), line, message }
}

/// Run every symbol-aware check over the loaded sources.
pub fn symbol_checks(sources: &[SourceFile], cfg: &LintConfig) -> Vec<Finding> {
    let ws = WorkspaceSymbols::build(sources);
    let mut out = Vec::new();
    out.extend(e006(sources, &ws, cfg));
    out.extend(e007(sources, &ws, cfg));
    out.extend(e008(sources, &ws, cfg));
    out.extend(e009(sources, &ws, cfg));
    out.extend(harness_sweep(sources, cfg));
    out
}

/// Is `ty` a std-`RandomState` unordered map/set? Hasher-explicit forms
/// (three-parameter `HashMap`, two-parameter `HashSet`) and types whose
/// import resolves outside `std` are not.
fn is_std_unordered(ty: &str, syms: &FileSymbols) -> bool {
    let head = head_ident(ty);
    let args = generic_args(ty);
    let default_hasher = match head {
        "HashMap" => args.len() <= 2 || args.get(2).is_some_and(|a| a.contains("RandomState")),
        "HashSet" => args.len() <= 1 || args.get(1).is_some_and(|a| a.contains("RandomState")),
        _ => return false,
    };
    if !default_hasher {
        return false;
    }
    match syms.import_path(head) {
        Some(path) => path.starts_with("std::collections") || path.starts_with("collections"),
        None => true, // unresolved: the std prelude-adjacent default
    }
}

/// Resolve the receiver of a `.method(` call at token `mi` (the method
/// ident) to a binding type: handles `name.method(` and
/// `self.field.method(`.
fn receiver_type<'a>(
    file: &SourceFile,
    syms: &'a FileSymbols,
    f: &'a FnItem,
    mi: usize,
) -> Option<&'a str> {
    let dot = file.prev_sig(mi)?;
    if file.toks[dot].kind != TokKind::Punct('.') {
        return None;
    }
    let recv = file.prev_sig(dot)?;
    if file.toks[recv].kind != TokKind::Ident {
        return None;
    }
    let name = file.text(recv);
    if name == "self" {
        return None;
    }
    syms.binding_type(f, &name)
}

/// Does the statement containing token `i` (bounded by `;`/`{`/`}`)
/// mention an order-insensitive marker?
fn statement_is_order_insensitive(file: &SourceFile, i: usize, cfg: &LintConfig) -> bool {
    let boundary = |k: TokKind| {
        matches!(k, TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}'))
    };
    let mut lo = i;
    while lo > 0 && !boundary(file.toks[lo - 1].kind) {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < file.toks.len() && !boundary(file.toks[hi].kind) {
        hi += 1;
    }
    (lo..=hi.min(file.toks.len() - 1)).any(|j| {
        file.toks[j].kind == TokKind::Ident
            && cfg.order_insensitive_markers.iter().any(|m| file.text(j) == *m)
    })
}

/// Does fn `f` sort anything (its own iteration results included)?
fn fn_sorts(f: &FnItem) -> bool {
    f.calls.iter().any(|c| c.starts_with("sort"))
}

/// E006 — nondeterminism hazards in analysis crates.
fn e006(sources: &[SourceFile], ws: &WorkspaceSymbols, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut flagged: BTreeSet<(usize, u32)> = BTreeSet::new();

    // (a) std-map iteration inside sink-reachable fns.
    for crate_name in &cfg.determinism_crates {
        for &(fi, gi) in &ws.reachable_from_markers(crate_name, &cfg.sink_fn_markers) {
            let file = &sources[fi];
            let syms = &ws.files[fi];
            let f = &syms.fns[gi];
            let Some((open, close)) = f.body else { continue };
            for j in open + 1..close {
                if file.toks[j].kind != TokKind::Ident {
                    continue;
                }
                let word = file.text(j);
                if !UNORDERED_ITER.contains(&word.as_ref()) {
                    continue;
                }
                if file.next_sig(j).map(|n| file.toks[n].kind) != Some(TokKind::Punct('(')) {
                    continue;
                }
                let Some(ty) = receiver_type(file, syms, f, j) else { continue };
                if !is_std_unordered(ty, syms) {
                    continue;
                }
                let line = file.toks[j].line;
                if file.is_test_line(line)
                    || fn_sorts(f)
                    || statement_is_order_insensitive(file, j, cfg)
                {
                    continue;
                }
                if flagged.insert((fi, line)) {
                    out.push(finding(
                        Code::E006,
                        file,
                        line,
                        format!(
                            "`.{word}()` over std `{}` in `{}`, which reaches a report/signature sink: iteration order is per-process random — sort first or use an order-insensitive reduction",
                            head_ident(ty),
                            f.name
                        ),
                    ));
                }
            }
        }
    }

    for (fi, file) in sources.iter().enumerate() {
        if !cfg.determinism_crates.contains(&file.crate_name) {
            continue;
        }
        let syms = &ws.files[fi];

        // (b) wall-clock / ambient-state reads.
        if !cfg.wall_clock_files.contains(&file.rel) {
            for j in 0..file.toks.len() {
                if file.toks[j].kind != TokKind::Ident {
                    continue;
                }
                let line = file.toks[j].line;
                if file.is_test_line(line) {
                    continue;
                }
                let method = file.text(j);
                for (owner, m) in CLOCK_READS {
                    if method != m {
                        continue;
                    }
                    // `Owner::method` — two `:` puncts then the owner ident.
                    let Some(c2) = file.prev_sig(j) else { continue };
                    let Some(c1) = file.prev_sig(c2) else { continue };
                    if file.toks[c2].kind != TokKind::Punct(':')
                        || file.toks[c1].kind != TokKind::Punct(':')
                    {
                        continue;
                    }
                    let Some(oi) = file.prev_sig(c1) else { continue };
                    if file.toks[oi].kind == TokKind::Ident && file.text(oi) == owner {
                        out.push(finding(
                            Code::E006,
                            file,
                            line,
                            format!(
                                "`{owner}::{m}` in analysis crate `{}`: wall-clock/ambient state must not influence analysis results",
                                file.crate_name
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // (c) float accumulation inside loops over unordered maps.
        for f in &syms.fns {
            let Some((open, close)) = f.body else { continue };
            let mut j = open + 1;
            while j < close {
                if file.toks[j].kind == TokKind::Ident && file.text(j) == "for" {
                    if let Some((body_open, body_close)) = for_loop_over_unordered(file, syms, f, j, close) {
                        for k in body_open + 1..body_close {
                            // `x += …` with a float-typed `x`.
                            if file.toks[k].kind != TokKind::Punct('+')
                                || file.toks.get(k + 1).map(|t| t.kind) != Some(TokKind::Punct('='))
                            {
                                continue;
                            }
                            let Some(lhs) = file.prev_sig(k) else { continue };
                            if file.toks[lhs].kind != TokKind::Ident {
                                continue;
                            }
                            let lhs_name = file.text(lhs);
                            let is_float = syms
                                .binding_type(f, &lhs_name)
                                .map(head_ident)
                                .is_some_and(|h| h == "f32" || h == "f64");
                            let line = file.toks[k].line;
                            if is_float && !file.is_test_line(line) {
                                out.push(finding(
                                    Code::E006,
                                    file,
                                    line,
                                    format!(
                                        "float `+=` on `{lhs_name}` inside iteration over a std unordered map in `{}`: summation order varies per process — sort keys first or accumulate integers",
                                        f.name
                                    ),
                                ));
                            }
                        }
                        j = body_close;
                        continue;
                    }
                }
                j += 1;
            }
        }
    }
    out
}

/// If token `fi` is a `for` whose `in`-expression involves a std unordered
/// map, return the loop body span.
fn for_loop_over_unordered(
    file: &SourceFile,
    syms: &FileSymbols,
    f: &FnItem,
    for_idx: usize,
    limit: usize,
) -> Option<(usize, usize)> {
    // Find the `in` keyword, then the body `{` at depth 0.
    let mut j = for_idx + 1;
    let mut in_idx = None;
    let mut depth = 0i64;
    while j < limit {
        match file.toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident if depth == 0 && file.text(j) == "in" => {
                in_idx = Some(j);
                break;
            }
            TokKind::Punct('{') => return None,
            _ => {}
        }
        j += 1;
    }
    let in_idx = in_idx?;
    let mut k = in_idx + 1;
    let mut depth = 0i64;
    let mut body_open = None;
    while k < limit {
        match file.toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => {
                body_open = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let body_open = body_open?;
    let unordered = (in_idx + 1..body_open).any(|x| {
        file.toks[x].kind == TokKind::Ident
            && syms
                .binding_type(f, &file.text(x))
                .is_some_and(|ty| is_std_unordered(ty, syms))
    });
    if !unordered {
        return None;
    }
    let body_close = file.matching_close(body_open)?;
    Some((body_open, body_close))
}

/// E007 — shared-state discipline for the coming sharded pipeline.
fn e007(sources: &[SourceFile], ws: &WorkspaceSymbols, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in sources.iter().enumerate() {
        if !cfg.worker_crates.contains(&file.crate_name) {
            continue;
        }
        let syms = &ws.files[fi];

        // (a) mutable statics.
        for s in &syms.statics {
            if s.is_mut && !file.is_test_line(s.line) {
                out.push(finding(
                    Code::E007,
                    file,
                    s.line,
                    format!("`static mut {}` in worker crate `{}`: unsynchronized shared state cannot survive sharding", s.name, file.crate_name),
                ));
            }
        }

        // (b) non-`Sync` interior mutability in type positions.
        for j in 0..file.toks.len() {
            if file.toks[j].kind != TokKind::Ident {
                continue;
            }
            let word = file.text(j);
            if word != "RefCell" && word != "Cell" && word != "Rc" {
                continue;
            }
            if file.next_sig(j).map(|n| file.toks[n].kind) != Some(TokKind::Punct('<')) {
                continue;
            }
            // Custom types with these names resolve via imports.
            if syms.import_path(&word).is_some_and(|p| !p.starts_with("std::") && !p.starts_with("core::") && !p.starts_with("alloc::")) {
                continue;
            }
            let line = file.toks[j].line;
            if !file.is_test_line(line) {
                out.push(finding(
                    Code::E007,
                    file,
                    line,
                    format!("`{word}<…>` in worker crate `{}`: non-`Sync` interior mutability blocks sharing across shard workers", file.crate_name),
                ));
            }
        }

        // (c) lock acquisition inside per-packet hot fns.
        let file_has_rwlock = syms.import_path("RwLock").is_some()
            || syms.imports.iter().any(|u| u.path.contains("RwLock"));
        for j in 0..file.toks.len() {
            if file.toks[j].kind != TokKind::Ident {
                continue;
            }
            let word = file.text(j);
            let is_lock = word == "lock" || (file_has_rwlock && (word == "read" || word == "write"));
            if !is_lock {
                continue;
            }
            let Some(dot) = file.prev_sig(j) else { continue };
            if file.toks[dot].kind != TokKind::Punct('.') {
                continue;
            }
            if file.next_sig(j).map(|n| file.toks[n].kind) != Some(TokKind::Punct('(')) {
                continue;
            }
            let line = file.toks[j].line;
            if file.is_test_line(line) {
                continue;
            }
            let Some(fn_name) = file.enclosing_fn(line) else { continue };
            let lower = fn_name.to_ascii_lowercase();
            if cfg.hot_fn_markers.iter().any(|m| lower.contains(m)) {
                out.push(finding(
                    Code::E007,
                    file,
                    line,
                    format!("`.{word}()` inside per-packet hot fn `{fn_name}`: lock acquisition on the packet path serializes the sharded pipeline"),
                ));
            }
        }
    }
    out
}

/// E008 — error-taxonomy totality on public fallible APIs.
fn e008(sources: &[SourceFile], ws: &WorkspaceSymbols, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in sources.iter().enumerate() {
        if !cfg.error_crates.contains(&file.crate_name) {
            continue;
        }
        let syms = &ws.files[fi];
        for f in &syms.fns {
            if !f.is_pub || file.is_test_line(f.line) {
                continue;
            }
            if let Some(ret) = &f.ret {
                // (a) `Result<T, E>`: E must come from the taxonomy.
                if head_ident(ret) == "Result" {
                    let args = generic_args(ret);
                    if args.len() == 2 {
                        let err = &args[1];
                        let eh = head_ident(err);
                        let generic_param = eh.len() == 1 && eh.chars().all(|c| c.is_ascii_uppercase());
                        let typed = cfg.taxonomy_errors.iter().any(|t| t == eh || err.contains(t.as_str()));
                        if !typed && !generic_param {
                            out.push(finding(
                                Code::E008,
                                file,
                                f.line,
                                format!("pub fn `{}` returns `Result<_, {eh}>`: error type is outside the crate taxonomy (expected one of {})", f.name, cfg.taxonomy_errors.join("/")),
                            ));
                        }
                    }
                }
                // (b) bool/Option smuggling on fallible-verb names. The
                // marker must match a whole `_`-separated segment so
                // `has_payload` does not trip on `load`; predicate
                // prefixes stay legal by construction.
                let lower = f.name.to_ascii_lowercase();
                let fallible = lower
                    .split('_')
                    .any(|seg| cfg.fallible_fn_markers.iter().any(|m| m == seg));
                if fallible {
                    let smuggled = ret == "bool" || head_ident(ret) == "Option";
                    if smuggled {
                        out.push(finding(
                            Code::E008,
                            file,
                            f.line,
                            format!("pub fn `{}` is a fallible operation but returns `{ret}`: failure detail is smuggled instead of typed — return a taxonomy `Result`", f.name),
                        ));
                    }
                }
            }
        }

        // (c) truncating `as` casts inside `Err(..)` construction.
        for j in 0..file.toks.len() {
            if file.toks[j].kind != TokKind::Ident || file.text(j) != "Err" {
                continue;
            }
            let Some(open) = file.next_sig(j) else { continue };
            if file.toks[open].kind != TokKind::Punct('(') {
                continue;
            }
            let Some(close) = file.matching_close(open) else { continue };
            for k in open + 1..close {
                if file.toks[k].kind != TokKind::Ident || file.text(k) != "as" {
                    continue;
                }
                let Some(t) = file.next_sig(k) else { continue };
                if file.toks[t].kind == TokKind::Ident
                    && TRUNCATING_INTS.contains(&file.text(t).as_ref())
                {
                    let line = file.toks[k].line;
                    if !file.is_test_line(line) {
                        out.push(finding(
                            Code::E008,
                            file,
                            line,
                            format!("truncating `as {}` inside `Err(..)`: error-path values must not silently lose width — use `try_into` or widen the field", file.text(t)),
                        ));
                    }
                }
            }
        }
    }
    let _ = ws;
    out
}

/// E009 — checkpoint/bench schema hygiene: every payload field and every
/// emitted JSON key must be referenced from test code.
fn e009(sources: &[SourceFile], ws: &WorkspaceSymbols, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let covered = test_reference_words(sources);

    // (a) checkpoint payload fields.
    let (ckpt_file, ckpt_struct) = &cfg.checkpoint_payload;
    for (fi, file) in sources.iter().enumerate() {
        if &file.rel != ckpt_file {
            continue;
        }
        if let Some(s) = ws.files[fi].structs.iter().find(|s| &s.name == ckpt_struct) {
            for (fname, fline, _ty) in &s.fields {
                if !covered.contains(fname.as_str()) {
                    out.push(finding(
                        Code::E009,
                        file,
                        *fline,
                        format!("checkpoint payload field `{fname}` has no test reference: add it to a round-trip test before it silently rots"),
                    ));
                }
            }
        }
    }

    // (b) bench-emitter JSON keys, over the emitter call-graph closure.
    for (fi, file) in sources.iter().enumerate() {
        if !cfg.bench_emitter_files.contains(&file.rel) {
            continue;
        }
        let syms = &ws.files[fi];
        // Schema markers: `ent-bench-` may appear as a literal inside the
        // emitter body, or behind a module-level `const BENCH_SCHEMA: &str
        // = "ent-bench-…"` the emitter references by name.
        let mut schema_consts: BTreeSet<String> = BTreeSet::new();
        for j in 0..file.toks.len() {
            if file.toks[j].kind == TokKind::Str && file.text(j).contains("ent-bench-") {
                // Walk back to the owning `const`/`static` name, if any.
                for k in (0..j).rev() {
                    match file.toks[k].kind {
                        TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                        TokKind::Ident if file.text(k) == "const" || file.text(k) == "static" => {
                            if let Some(ni) = file.next_sig(k) {
                                if file.toks[ni].kind == TokKind::Ident {
                                    schema_consts.insert(file.text(ni).into_owned());
                                }
                            }
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
        // Roots: fns whose bodies contain the schema string or reference a
        // schema const.
        let mut queue: Vec<String> = Vec::new();
        let mut reached: BTreeSet<String> = BTreeSet::new();
        for f in &syms.fns {
            if file.is_test_line(f.line) {
                continue; // tests referencing the schema are consumers
            }
            let Some((open, close)) = f.body else { continue };
            let is_root = (open..close).any(|j| match file.toks[j].kind {
                // The const may be spliced via `format!` interpolation
                // (`"{BENCH_SCHEMA}"`), which lexes as part of the string.
                TokKind::Str => {
                    let t = file.text(j);
                    t.contains("ent-bench-") || schema_consts.iter().any(|c| t.contains(c.as_str()))
                }
                TokKind::Ident => schema_consts.contains(file.text(j).as_ref()),
                _ => false,
            });
            if is_root && reached.insert(f.name.clone()) {
                queue.push(f.name.clone());
            }
        }
        // Forward closure over the crate call graph (captures shared
        // helpers like `push_stat`).
        let by_name = ws.crate_fns.get(&file.crate_name);
        while let Some(name) = queue.pop() {
            let Some(refs) = by_name.and_then(|m| m.get(&name)) else { continue };
            for &(rfi, rgi) in refs {
                for callee in &ws.files[rfi].fns[rgi].calls {
                    if reached.insert(callee.clone()) {
                        queue.push(callee.clone());
                    }
                }
            }
        }
        // Collect emitted keys from every reached fn body in this crate.
        let mut seen_keys: BTreeSet<String> = BTreeSet::new();
        for (rfi, rfile) in sources.iter().enumerate() {
            if rfile.crate_name != file.crate_name {
                continue;
            }
            for f in &ws.files[rfi].fns {
                if !reached.contains(&f.name) || rfile.is_test_line(f.line) {
                    continue;
                }
                let Some((open, close)) = f.body else { continue };
                for j in open..close {
                    if rfile.toks[j].kind != TokKind::Str {
                        continue;
                    }
                    let text = rfile.text(j);
                    for key in emitted_json_keys(&text) {
                        if !seen_keys.insert(key.clone()) {
                            continue;
                        }
                        if !covered.contains(key.as_str()) {
                            out.push(finding(
                                Code::E009,
                                rfile,
                                rfile.toks[j].line,
                                format!("bench JSON key `{key}` is emitted but never referenced from test code: extend the obs-check/round-trip coverage"),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Every identifier-shaped word visible from test context: idents on test
/// lines plus words inside string literals on test lines (tests reference
/// JSON keys as strings, struct fields as idents).
fn test_reference_words(sources: &[SourceFile]) -> BTreeSet<String> {
    let mut words = BTreeSet::new();
    for file in sources {
        for (j, t) in file.toks.iter().enumerate() {
            if !file.is_test_line(t.line) {
                continue;
            }
            match t.kind {
                TokKind::Ident => {
                    words.insert(file.text(j).into_owned());
                }
                TokKind::Str => {
                    let text = file.text(j).into_owned();
                    for w in text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                        if !w.is_empty() {
                            words.insert(w.to_string());
                        }
                    }
                }
                _ => {}
            }
        }
    }
    words
}

/// Extract JSON keys from the raw text of a string literal in an emitter:
/// occurrences of `\"key\":` (the escaped form the hand-rolled writers
/// use). Interpolation braces (`{name}`) never match, so dynamic keys are
/// naturally skipped.
fn emitted_json_keys(raw: &str) -> Vec<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b'\\' && bytes[i + 1] == b'"' {
            let start = i + 2;
            let mut k = start;
            while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
                k += 1;
            }
            if k > start
                && k + 2 < bytes.len()
                && bytes[k] == b'\\'
                && bytes[k + 1] == b'"'
                && bytes[k + 2] == b':'
            {
                // Guaranteed ASCII range by the byte checks above.
                out.push(raw[start..k].to_string());
                i = k + 3;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// E001-lite sweep over the harness crates (`tests`, `bench`): bare
/// `.unwrap()` / `todo!` / `unimplemented!` outside attribute-marked
/// `#[test]`/`#[cfg(test)]` regions. Harness code may panic, but shared
/// helpers must say why (`expect`/`assert!` with a message) — a bare
/// unwrap in a helper takes down every test that calls it with no
/// diagnostic.
fn harness_sweep(sources: &[SourceFile], cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in sources {
        if !cfg.harness_crates.contains(&file.crate_name) {
            continue;
        }
        for j in 0..file.toks.len() {
            if file.toks[j].kind != TokKind::Ident {
                continue;
            }
            let line = file.toks[j].line;
            if file.is_attr_test_line(line) {
                continue;
            }
            let word = file.text(j);
            match word.as_ref() {
                "unwrap" => {
                    let dotted = file
                        .prev_sig(j)
                        .is_some_and(|p| file.toks[p].kind == TokKind::Punct('.'));
                    let called = file
                        .next_sig(j)
                        .is_some_and(|n| file.toks[n].kind == TokKind::Punct('('));
                    if dotted && called {
                        out.push(finding(
                            Code::E001,
                            file,
                            line,
                            "bare `.unwrap()` in harness helper code: use `.expect(\"why\")` so a failing fixture names its cause".to_string(),
                        ));
                    }
                }
                "todo" | "unimplemented"
                    if file
                        .next_sig(j)
                        .is_some_and(|n| file.toks[n].kind == TokKind::Punct('!')) =>
                {
                    out.push(finding(
                        Code::E001,
                        file,
                        line,
                        format!("`{word}!` in harness code: stubs must not ship in the test tree"),
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rel: &str, crate_name: &str, is_test: bool, text: &str) -> SourceFile {
        SourceFile::new(rel.into(), crate_name.into(), is_test, text.as_bytes().to_vec())
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        symbol_checks(&files, &LintConfig::default())
    }

    #[test]
    fn e006_flags_sink_reachable_map_iteration() {
        let f = src(
            "crates/core/src/report.rs",
            "core",
            false,
            "use std::collections::HashMap;\npub fn render_report(m: &HashMap<u32, u64>) {\n    for (k, v) in m.iter() {\n        emit(k, v);\n    }\n}\nfn emit(_k: &u32, _v: &u64) {}\n",
        );
        let fs = run(vec![f]);
        assert!(fs.iter().any(|f| f.code == Code::E006 && f.line == 3), "{fs:#?}");
    }

    #[test]
    fn e006_respects_sort_and_order_insensitive_escapes() {
        let f = src(
            "crates/core/src/report.rs",
            "core",
            false,
            "use std::collections::HashMap;\npub fn render_sorted(m: &HashMap<u32, u64>) {\n    let mut ks: Vec<u32> = m.keys().copied().collect();\n    ks.sort_unstable();\n}\npub fn render_total(m: &HashMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n",
        );
        let fs = run(vec![f]);
        assert!(fs.iter().all(|f| f.code != Code::E006), "{fs:#?}");
    }

    #[test]
    fn e006_explicit_hasher_is_clean() {
        let f = src(
            "crates/core/src/report.rs",
            "core",
            false,
            "use std::collections::HashMap;\npub fn render_fx(m: &HashMap<u32, u64, FxBuildHasher>) {\n    for (k, v) in m.iter() {\n        let _ = (k, v);\n    }\n}\n",
        );
        let fs = run(vec![f]);
        assert!(fs.iter().all(|f| f.code != Code::E006), "{fs:#?}");
    }

    #[test]
    fn e006_wall_clock_flagged_and_exempt_file_quiet() {
        let hot = src(
            "crates/flow/src/clocky.rs",
            "flow",
            false,
            "use std::time::Instant;\npub fn tick() {\n    let _t = Instant::now();\n}\n",
        );
        let exempt = src(
            "crates/core/src/metrics.rs",
            "core",
            false,
            "use std::time::Instant;\npub fn stage() {\n    let _t = Instant::now();\n}\n",
        );
        let fs = run(vec![hot, exempt]);
        assert_eq!(fs.iter().filter(|f| f.code == Code::E006).count(), 1, "{fs:#?}");
        assert!(fs.iter().any(|f| f.file == "crates/flow/src/clocky.rs" && f.line == 3));
    }

    #[test]
    fn e006_float_accumulation_in_map_loop() {
        let f = src(
            "crates/proto/src/mix.rs",
            "proto",
            false,
            "use std::collections::HashMap;\npub fn mix(m: &HashMap<u32, f64>) -> f64 {\n    let mut total: f64 = 0.0;\n    for v in m.values() {\n        total += *v;\n    }\n    total\n}\n",
        );
        let fs = run(vec![f]);
        assert!(fs.iter().any(|f| f.code == Code::E006 && f.line == 5), "{fs:#?}");
    }

    #[test]
    fn e007_static_mut_refcell_and_hot_lock() {
        let f = src(
            "crates/flow/src/shard.rs",
            "flow",
            false,
            "use std::cell::RefCell;\nuse std::sync::Mutex;\nstatic mut PACKETS: u64 = 0;\npub struct S {\n    cache: RefCell<u64>,\n}\npub fn parse_next(m: &Mutex<u64>) {\n    let _g = m.lock();\n}\npub fn cold_report(m: &Mutex<u64>) {\n    let _g = m.lock();\n}\n",
        );
        let fs = run(vec![f]);
        let e7: Vec<u32> = fs.iter().filter(|f| f.code == Code::E007).map(|f| f.line).collect();
        assert_eq!(e7, vec![3, 5, 8], "{fs:#?}");
    }

    #[test]
    fn e008_string_error_and_option_smuggling() {
        let f = src(
            "crates/core/src/io.rs",
            "core",
            false,
            "pub fn parse_doc(s: &str) -> Result<u32, String> {\n    s.parse().map_err(|_| \"bad\".to_string())\n}\npub fn load_state(p: &str) -> Option<u32> {\n    let _ = p;\n    None\n}\npub fn open_typed(p: &str) -> Result<u32, AnalysisError> {\n    let _ = p;\n    Err(AnalysisError::bad(9999 as u16))\n}\n",
        );
        let fs = run(vec![f]);
        let e8: Vec<u32> = fs.iter().filter(|f| f.code == Code::E008).map(|f| f.line).collect();
        assert_eq!(e8, vec![1, 4, 10], "{fs:#?}");
    }

    #[test]
    fn e008_generic_and_io_errors_pass() {
        let f = src(
            "crates/pcap/src/rdr.rs",
            "pcap",
            false,
            "pub fn read_all(p: &str) -> Result<Vec<u8>, io::Error> {\n    std::fs::read(p)\n}\npub fn map_with<E>(f: fn() -> Result<u32, E>) -> Result<u32, E> {\n    f()\n}\n",
        );
        let fs = run(vec![f]);
        assert!(fs.iter().all(|f| f.code != Code::E008), "{fs:#?}");
    }

    #[test]
    fn e009_uncovered_field_and_key() {
        let ckpt = src(
            "crates/core/src/checkpoint.rs",
            "core",
            false,
            "pub struct Checkpoint {\n    pub epoch_index: u64,\n    pub ghost_field: u64,\n}\n",
        );
        let emitter = src(
            "crates/core/src/metrics.rs",
            "core",
            false,
            "pub fn bench_json() -> String {\n    let mut s = String::new();\n    s.push_str(\"{\\\"schema\\\": \\\"ent-bench-pipeline/1\\\", \\\"ghost_key\\\": 1}\");\n    push_tail(&mut s);\n    s\n}\nfn push_tail(s: &mut String) {\n    s.push_str(\"\\\"covered_key\\\": 2\");\n}\n",
        );
        let tests = src(
            "tests/tests/obs.rs",
            "tests",
            true,
            "fn check() {\n    let _ = \"schema covered_key\";\n    let c = Checkpoint { epoch_index: 1, ghost_field: 0 };\n    let _ = c.epoch_index;\n}\n",
        );
        // `ghost_field` appears in tests too — drop it from coverage by
        // renaming in the test source.
        let tests = {
            let _ = tests;
            src(
                "tests/tests/obs.rs",
                "tests",
                true,
                "fn check() {\n    let _ = \"schema covered_key\";\n    let _ = epoch_index;\n}\n",
            )
        };
        let fs = run(vec![ckpt, emitter, tests]);
        let e9: Vec<(String, u32)> = fs
            .iter()
            .filter(|f| f.code == Code::E009)
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            e9,
            vec![
                ("crates/core/src/checkpoint.rs".to_string(), 3),
                ("crates/core/src/metrics.rs".to_string(), 3),
            ],
            "{fs:#?}"
        );
    }

    #[test]
    fn harness_sweep_flags_bare_unwrap_outside_test_regions() {
        let f = src(
            "tests/src/lib.rs",
            "tests",
            true,
            "pub fn helper(p: &str) -> u32 {\n    p.parse().unwrap()\n}\n#[test]\nfn ok_inside() {\n    let _: u32 = \"1\".parse().unwrap();\n}\n",
        );
        let fs = run(vec![f]);
        let e1: Vec<u32> = fs.iter().filter(|f| f.code == Code::E001).map(|f| f.line).collect();
        assert_eq!(e1, vec![2], "{fs:#?}");
    }

    #[test]
    fn emitted_json_key_extraction() {
        let raw = r#""{\"schema\": \"ent-bench-pipeline/1\", \"packets\": 0, \"{name}\": 1}""#;
        assert_eq!(emitted_json_keys(raw), vec!["schema", "packets"]);
    }
}
