//! Symbol resolution over the token stream: items, bindings, imports, a
//! module graph across crates and an approximate intra-crate call graph.
//!
//! `ent-lint` has no type system — the workspace builds offline, so there
//! is no `syn`, no HIR, no trait resolution. This layer recovers just
//! enough structure for the determinism/concurrency lints (E006–E009) to
//! be *symbol-aware* rather than purely textual:
//!
//! * **Items** per file: `fn` (with parameter and return types, body span,
//!   and the `impl` type it belongs to), `struct` fields, `static`/`const`
//!   items, and `use` imports flattened to `local name → full path`.
//! * **Bindings**: `let` declarations inside each fn body, keeping the
//!   annotated type or, failing that, the head of a `Path::constructor()`
//!   initializer. Receiver lookup walks lets → params → struct fields →
//!   statics, all within one file.
//! * **Call graph**: within each crate, `ident(` free-function calls and
//!   `.ident(` method calls are matched *by name* against the crate's fn
//!   items. Reachability is a plain BFS over those edges.
//!
//! ## Approximations (documented, deliberate)
//!
//! Name-based call matching over-approximates (two fns sharing a name
//! merge their edges) and under-approximates (calls through function
//! pointers, trait objects or macros are invisible). Binding resolution is
//! file-local: a field of a type imported from another crate resolves only
//! if a struct of that name exists in the same file. Both trade precision
//! for zero dependencies; the E006–E009 checks are designed so that a
//! missed edge degrades to a missed finding, never a phantom one, and the
//! seeded fixture corpus pins the cases that must be caught.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Declared with `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index span of the body `{ … }`, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// `(name, canonical type text)` per typed parameter (`self` skipped).
    pub params: Vec<(String, String)>,
    /// Canonical return-type text after `->`, if any.
    pub ret: Option<String>,
    /// Names called from the body: `callee(` and `.method(` occurrences.
    pub calls: Vec<String>,
    /// `let` bindings in the body: `(name, canonical type text)`.
    pub lets: Vec<(String, String)>,
    /// Head of the enclosing `impl` type, for methods.
    pub impl_type: Option<String>,
}

/// One `struct` item with its named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// `(name, canonical type text)` per named field.
    pub fields: Vec<(String, u32, String)>,
}

/// One `static` or `const` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Declared `static mut`.
    pub is_mut: bool,
    /// Canonical type text.
    pub ty: String,
}

/// One flattened `use` import: `local` is the name visible in the file,
/// `path` the full `::`-joined path it stands for.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Name the import binds locally (alias-aware).
    pub local: String,
    /// Full imported path, `::`-separated.
    pub path: String,
}

/// All symbols recovered from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Every `fn`, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every `struct` with named fields.
    pub structs: Vec<StructItem>,
    /// Every `static`/`const` item at any nesting level.
    pub statics: Vec<StaticItem>,
    /// Flattened imports.
    pub imports: Vec<UseItem>,
}

impl FileSymbols {
    /// Parse one lexed file.
    pub fn parse(file: &SourceFile) -> FileSymbols {
        let mut syms = FileSymbols::default();
        let toks = &file.toks;
        let mut impl_stack: Vec<(String, usize)> = Vec::new(); // (type head, close idx)
        let mut i = 0usize;
        while i < toks.len() {
            // Pop finished impl blocks.
            while impl_stack.last().is_some_and(|&(_, close)| i > close) {
                impl_stack.pop();
            }
            if toks[i].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let word = file.text(i);
            match word.as_ref() {
                "use" => i = parse_use(file, i, &mut syms.imports),
                "fn" => {
                    let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                    let (item, next) = parse_fn(file, i, impl_type);
                    let resume = match item.as_ref().and_then(|f| f.body) {
                        Some((open, _)) => open + 1, // descend into the body
                        None => next,
                    };
                    if let Some(item) = item {
                        syms.fns.push(item);
                    }
                    i = resume;
                }
                "struct" => i = parse_struct(file, i, &mut syms.structs),
                "static" | "const" => i = parse_static(file, i, &mut syms.statics),
                "impl" => {
                    if let Some((head, open)) = parse_impl_head(file, i) {
                        if let Some(close) = file.matching_close(open) {
                            impl_stack.push((head, close));
                        }
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        syms
    }

    /// Resolve the type of `name` as seen from inside fn `f`: let bindings
    /// first, then parameters, then any struct field or static in the file.
    pub fn binding_type<'a>(&'a self, f: &'a FnItem, name: &str) -> Option<&'a str> {
        if let Some((_, ty)) = f.lets.iter().rev().find(|(n, _)| n == name) {
            return Some(ty);
        }
        if let Some((_, ty)) = f.params.iter().find(|(n, _)| n == name) {
            return Some(ty);
        }
        for s in &self.structs {
            if let Some((_, _, ty)) = s.fields.iter().find(|(n, _, _)| n == name) {
                return Some(ty);
            }
        }
        self.statics.iter().find(|s| s.name == name).map(|s| s.ty.as_str())
    }

    /// The import path bound to `local`, if any.
    pub fn import_path(&self, local: &str) -> Option<&str> {
        self.imports.iter().find(|u| u.local == local).map(|u| u.path.as_str())
    }

    /// The fn item whose body contains `line` (innermost wins).
    pub fn fn_at_line(&self, file: &SourceFile, line: u32) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| {
                f.body.is_some_and(|(open, close)| {
                    file.toks[open].line <= line && line <= file.toks[close].line
                })
            })
            .max_by_key(|f| f.body.map(|(open, _)| file.toks[open].line))
    }
}

/// Keywords that are never callee names.
const CALL_KEYWORDS: [&str; 12] = [
    "if", "match", "while", "for", "loop", "return", "fn", "let", "in", "move", "as", "else",
];

/// Canonical text of a token slice: comments dropped, punctuation joined
/// tight, a single space kept between adjacent word tokens so `&mut Vec`
/// does not collapse into `&mutVec`.
fn canon(file: &SourceFile, from: usize, to: usize) -> String {
    let mut s = String::new();
    for j in from..to {
        if file.toks[j].kind == TokKind::Comment {
            continue;
        }
        let txt = file.text(j);
        let word_start = txt.bytes().next().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
        if word_start && s.bytes().last().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            s.push(' ');
        }
        s.push_str(&txt);
    }
    s
}

/// Head identifier of a canonical type/path text: the last `::` segment's
/// leading identifier (`std::collections::HashMap<K,V>` → `HashMap`).
pub fn head_ident(ty: &str) -> &str {
    let mut no_ref = ty.trim_start_matches(['&', ' ']);
    while let Some(rest) = no_ref.strip_prefix("mut ").or_else(|| no_ref.strip_prefix("mut&")) {
        no_ref = rest.trim_start_matches(['&', ' ']);
    }
    let base = match no_ref.find('<') {
        Some(lt) => &no_ref[..lt],
        None => no_ref,
    };
    match base.rfind("::") {
        Some(p) => &base[p + 2..],
        None => base,
    }
}

/// Split the top-level generic arguments of `ty` (text inside the first
/// `<…>` balanced at depth 0). `HashMap<FlowKey,ConnIndex>` →
/// `["FlowKey", "ConnIndex"]`; no generics → empty.
pub fn generic_args(ty: &str) -> Vec<String> {
    let Some(lt) = ty.find('<') else { return Vec::new() };
    let bytes = ty.as_bytes();
    let mut depth = 0i32;
    let mut out = Vec::new();
    let mut start = lt + 1;
    let mut end = ty.len();
    for (k, &b) in bytes.iter().enumerate().skip(lt) {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b',' if depth == 1 => {
                out.push(ty[start..k].to_string());
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < end {
        out.push(ty[start..end].to_string());
    }
    out
}

/// Parse a `use` item starting at the `use` keyword; flattens nested
/// groups and honors `as` aliases. Returns the index past the `;`.
fn parse_use(file: &SourceFile, use_idx: usize, out: &mut Vec<UseItem>) -> usize {
    // Collect significant tokens up to `;`.
    let mut end = use_idx + 1;
    while end < file.toks.len() && file.toks[end].kind != TokKind::Punct(';') {
        end += 1;
    }
    fn walk(file: &SourceFile, mut j: usize, end: usize, prefix: &str, out: &mut Vec<UseItem>) -> usize {
        let mut path = prefix.to_string();
        let mut last_seg = String::new();
        while j < end {
            match file.toks[j].kind {
                TokKind::Comment => j += 1,
                TokKind::Ident => {
                    let seg = file.text(j).into_owned();
                    if seg == "as" {
                        // alias: next ident is the local name
                        if let Some(n) = file.next_sig(j) {
                            if n < end && file.toks[n].kind == TokKind::Ident {
                                out.push(UseItem { local: file.text(n).into_owned(), path: path.clone() });
                                return skip_to_group_end(file, n + 1, end);
                            }
                        }
                        return end;
                    }
                    if !path.is_empty() {
                        path.push_str("::");
                    }
                    path.push_str(&seg);
                    last_seg = seg;
                    j += 1;
                }
                TokKind::Punct('{') => {
                    // group: recurse per comma-separated element
                    let mut k = j + 1;
                    loop {
                        k = walk(file, k, end, &path, out);
                        if k >= end || file.toks[k].kind == TokKind::Punct('}') {
                            return k + 1;
                        }
                        k += 1; // skip comma
                    }
                }
                TokKind::Punct('}') | TokKind::Punct(',') => break,
                TokKind::Punct('*') => {
                    // glob: record under the wildcard name
                    out.push(UseItem { local: "*".into(), path: path.clone() });
                    return j + 1;
                }
                _ => j += 1, // `::`, visibility puncts
            }
        }
        if !last_seg.is_empty() {
            out.push(UseItem { local: last_seg, path });
        }
        j
    }
    fn skip_to_group_end(file: &SourceFile, mut j: usize, end: usize) -> usize {
        while j < end
            && file.toks[j].kind != TokKind::Punct(',')
            && file.toks[j].kind != TokKind::Punct('}')
        {
            j += 1;
        }
        j
    }
    walk(file, use_idx + 1, end, "", out);
    end + 1
}

/// Parse `fn name …` starting at the `fn` keyword. Returns the item and
/// the token index to resume at on failure to parse a body.
fn parse_fn(file: &SourceFile, fn_idx: usize, impl_type: Option<String>) -> (Option<FnItem>, usize) {
    let Some(ni) = file.next_sig(fn_idx) else { return (None, fn_idx + 1) };
    if file.toks[ni].kind != TokKind::Ident {
        return (None, fn_idx + 1); // `fn(` pointer type
    }
    let name = file.text(ni).into_owned();
    let is_pub = file
        .prev_sig(fn_idx)
        .is_some_and(|p| file.toks[p].kind == TokKind::Ident && file.text(p) == "pub")
        || prev_is_pub_qualifier(file, fn_idx);
    // Skip generics.
    let mut j = ni + 1;
    if file.toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('<')) {
        j = skip_angle(file, j);
    }
    // Parameters.
    let mut params = Vec::new();
    if file.toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('(')) {
        if let Some(close) = file.matching_close(j) {
            parse_params(file, j + 1, close, &mut params);
            j = close + 1;
        } else {
            return (None, j + 1);
        }
    }
    // Return type: `-> …` up to `{`, `;` or `where` at depth 0.
    let mut ret = None;
    let mut k = j;
    let mut ret_start = None;
    let mut depth = 0i64;
    while k < file.toks.len() {
        match file.toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                // `->` arrow: the `>` right after `-`
                if k > 0 && file.toks[k - 1].kind == TokKind::Punct('-') {
                    if depth == 0 && ret_start.is_none() {
                        ret_start = Some(k + 1);
                    }
                } else {
                    depth -= 1;
                }
            }
            TokKind::Punct('{') | TokKind::Punct(';') if depth <= 0 => break,
            TokKind::Ident if depth <= 0 && file.text(k) == "where" => break,
            _ => {}
        }
        k += 1;
    }
    if let Some(rs) = ret_start {
        let txt = canon(file, rs, k);
        if !txt.is_empty() {
            ret = Some(txt);
        }
    }
    // Skip a where clause to the body `{` or `;`.
    while k < file.toks.len()
        && file.toks[k].kind != TokKind::Punct('{')
        && file.toks[k].kind != TokKind::Punct(';')
    {
        k += 1;
    }
    let mut body = None;
    let mut calls = Vec::new();
    let mut lets = Vec::new();
    if file.toks.get(k).map(|t| t.kind) == Some(TokKind::Punct('{')) {
        if let Some(close) = file.matching_close(k) {
            body = Some((k, close));
            scan_body(file, k + 1, close, &mut calls, &mut lets);
        }
    }
    (
        Some(FnItem {
            name,
            is_pub,
            line: file.toks[fn_idx].line,
            body,
            params,
            ret,
            calls,
            lets,
            impl_type,
        }),
        k + 1,
    )
}

/// Does a `pub(crate)`-style qualifier precede token `idx`?
fn prev_is_pub_qualifier(file: &SourceFile, idx: usize) -> bool {
    // pattern: `pub ( … )` — previous sig is `)`, scan back to `(`, the
    // token before it must be `pub`.
    let Some(p) = file.prev_sig(idx) else { return false };
    if file.toks[p].kind != TokKind::Punct(')') {
        return false;
    }
    let mut depth = 0i64;
    for j in (0..=p).rev() {
        match file.toks[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return file
                        .prev_sig(j)
                        .is_some_and(|q| file.toks[q].kind == TokKind::Ident && file.text(q) == "pub");
                }
            }
            _ => {}
        }
    }
    false
}

/// Skip a balanced `<…>` starting at `open` (token kind `<`).
fn skip_angle(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < file.toks.len() {
        match file.toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct(';') => return j, // bail: not generics
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parse `name: Type` parameters between `from..to` (inside the parens).
fn parse_params(file: &SourceFile, from: usize, to: usize, out: &mut Vec<(String, String)>) {
    let mut j = from;
    while j < to {
        // Element starts here; find its top-level `:` and terminating `,`.
        let mut colon = None;
        let mut depth = 0i64;
        let start = j;
        let mut k = j;
        while k < to {
            match file.toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') | TokKind::Punct('>') => depth -= 1,
                TokKind::Punct(':') if depth == 0 => {
                    // `::` is two adjacent `:` tokens — skip both.
                    if file.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(':')) {
                        k += 1;
                    } else if colon.is_none() {
                        colon = Some(k);
                    }
                }
                TokKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(c) = colon {
            // Name: last ident before the colon (skips `mut`, `&`, patterns).
            let name = (start..c)
                .rev()
                .find(|&x| file.toks[x].kind == TokKind::Ident && file.text(x) != "mut")
                .map(|x| file.text(x).into_owned());
            if let Some(name) = name {
                out.push((name, canon(file, c + 1, k)));
            }
        }
        j = k + 1;
    }
}

/// Scan a fn body for callee names and `let` bindings.
fn scan_body(
    file: &SourceFile,
    from: usize,
    to: usize,
    calls: &mut Vec<String>,
    lets: &mut Vec<(String, String)>,
) {
    let mut j = from;
    while j < to {
        let t = &file.toks[j];
        if t.kind == TokKind::Ident {
            let word = file.text(j);
            if word == "let" {
                j = parse_let(file, j, to, lets);
                continue;
            }
            if !CALL_KEYWORDS.contains(&word.as_ref()) {
                if let Some(n) = file.next_sig(j) {
                    if n < to && file.toks[n].kind == TokKind::Punct('(') {
                        calls.push(word.into_owned());
                    }
                }
            }
        }
        j += 1;
    }
}

/// Parse one `let [mut] name [: Type] [= init] ;` binding; returns resume
/// index. Only simple ident patterns are recorded.
fn parse_let(file: &SourceFile, let_idx: usize, to: usize, lets: &mut Vec<(String, String)>) -> usize {
    let Some(mut j) = file.next_sig(let_idx) else { return let_idx + 1 };
    if j < to && file.toks[j].kind == TokKind::Ident && file.text(j) == "mut" {
        j = match file.next_sig(j) {
            Some(x) => x,
            None => return j + 1,
        };
    }
    if j >= to || file.toks[j].kind != TokKind::Ident {
        return let_idx + 1; // destructuring / let-else — skip
    }
    let name = file.text(j).into_owned();
    let Some(after) = file.next_sig(j) else { return j + 1 };
    if after < to && file.toks[after].kind == TokKind::Punct(':') {
        // Annotated: type runs to `=` or `;` at depth 0.
        let mut depth = 0i64;
        let mut k = after + 1;
        while k < to {
            match file.toks[k].kind {
                TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('=') | TokKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        lets.push((name, canon(file, after + 1, k)));
        return k;
    }
    if after < to && file.toks[after].kind == TokKind::Punct('=') {
        // Unannotated: record `Path::ctor` initializer heads only.
        if let Some(v) = file.next_sig(after) {
            if v < to && file.toks[v].kind == TokKind::Ident {
                let head = file.text(v).into_owned();
                let c1 = file.next_sig(v);
                let is_path = c1.is_some_and(|x| x < to && file.toks[x].kind == TokKind::Punct(':'));
                if is_path {
                    lets.push((name, head));
                }
            }
        }
    }
    j + 1
}

/// Parse `struct Name { fields }`; returns resume index.
fn parse_struct(file: &SourceFile, struct_idx: usize, out: &mut Vec<StructItem>) -> usize {
    let Some(ni) = file.next_sig(struct_idx) else { return struct_idx + 1 };
    if file.toks[ni].kind != TokKind::Ident {
        return struct_idx + 1;
    }
    let name = file.text(ni).into_owned();
    let line = file.toks[struct_idx].line;
    // Skip generics, find `{`, `(` (tuple) or `;` (unit).
    let mut j = ni + 1;
    if file.toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('<')) {
        j = skip_angle(file, j);
    }
    while j < file.toks.len() {
        match file.toks[j].kind {
            TokKind::Punct('{') => {
                let Some(close) = file.matching_close(j) else { return j + 1 };
                let mut fields = Vec::new();
                parse_fields(file, j + 1, close, &mut fields);
                out.push(StructItem { name, line, fields });
                return j + 1; // descend (nested items are unlikely but harmless)
            }
            TokKind::Punct('(') | TokKind::Punct(';') => {
                out.push(StructItem { name, line, fields: Vec::new() });
                return j + 1;
            }
            TokKind::Ident if file.text(j) == "where" => j += 1,
            _ => j += 1,
        }
    }
    j
}

/// Parse `name: Type,` fields between braces (visibility tolerated).
fn parse_fields(file: &SourceFile, from: usize, to: usize, out: &mut Vec<(String, u32, String)>) {
    let mut j = from;
    while j < to {
        // Skip attributes on the field.
        if file.toks[j].kind == TokKind::Punct('#') {
            if let Some(n) = file.next_sig(j) {
                if file.toks[n].kind == TokKind::Punct('[') {
                    if let Some(close) = file.matching_close(n) {
                        j = close + 1;
                        continue;
                    }
                }
            }
        }
        if file.toks[j].kind == TokKind::Comment {
            j += 1;
            continue;
        }
        // Field: [pub[(…)]] name `:` Type  up to top-level `,` or end.
        let mut name_idx = None;
        let mut k = j;
        let mut depth = 0i64;
        let mut colon = None;
        while k < to {
            match file.toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') | TokKind::Punct('>') => depth -= 1,
                TokKind::Punct(':') if depth == 0 && colon.is_none() => {
                    if file.toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(':')) {
                        k += 1;
                    } else {
                        colon = Some(k);
                        name_idx = (j..k)
                            .rev()
                            .find(|&x| file.toks[x].kind == TokKind::Ident && file.text(x) != "pub");
                    }
                }
                TokKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let (Some(ni), Some(c)) = (name_idx, colon) {
            out.push((file.text(ni).into_owned(), file.toks[ni].line, canon(file, c + 1, k)));
        }
        j = k + 1;
    }
}

/// Parse `static [mut] NAME: Type` / `const NAME: Type`; returns resume.
fn parse_static(file: &SourceFile, kw_idx: usize, out: &mut Vec<StaticItem>) -> usize {
    let is_static = file.text(kw_idx) == "static";
    let Some(mut j) = file.next_sig(kw_idx) else { return kw_idx + 1 };
    let mut is_mut = false;
    if file.toks[j].kind == TokKind::Ident && file.text(j) == "mut" {
        is_mut = true;
        j = match file.next_sig(j) {
            Some(x) => x,
            None => return j + 1,
        };
    }
    if file.toks[j].kind != TokKind::Ident {
        return kw_idx + 1; // `const fn`, `const {}` blocks, `const` generics
    }
    let name = file.text(j).into_owned();
    if name == "fn" {
        return j; // `const fn` — let the fn parser handle it
    }
    let Some(after) = file.next_sig(j) else { return j + 1 };
    if file.toks[after].kind != TokKind::Punct(':') {
        return j + 1;
    }
    // Type up to `=` or `;`.
    let mut depth = 0i64;
    let mut k = after + 1;
    while k < file.toks.len() {
        match file.toks[k].kind {
            TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('=') | TokKind::Punct(';') if depth <= 0 => break,
            _ => {}
        }
        k += 1;
    }
    out.push(StaticItem {
        name,
        line: file.toks[kw_idx].line,
        is_mut: is_mut && is_static,
        ty: canon(file, after + 1, k),
    });
    k
}

/// Parse an `impl` header: returns the head ident of the implemented type
/// and the index of the body `{`.
fn parse_impl_head(file: &SourceFile, impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    if file.toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('<')) {
        j = skip_angle(file, j);
    }
    // Collect path tokens; if `for` appears, the type is what follows it.
    let mut head: Option<String> = None;
    let mut after_for = false;
    while j < file.toks.len() {
        match file.toks[j].kind {
            TokKind::Punct('{') => {
                return head.map(|h| (h, j));
            }
            TokKind::Ident => {
                let w = file.text(j);
                if w == "for" {
                    after_for = true;
                    head = None;
                } else if w != "where" && (head.is_none() || !after_for) {
                    // Track the last path ident seen so `wire::Packet`
                    // resolves to `Packet`; generics are skipped below.
                    head = Some(w.into_owned());
                }
                j += 1;
            }
            TokKind::Punct('<') => j = skip_angle(file, j),
            TokKind::Punct(';') => return None,
            _ => j += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Crate-level graphs.
// ---------------------------------------------------------------------------

/// A fn reference: index of the file in the analyzed set, index of the fn
/// within that file's symbols.
pub type FnRef = (usize, usize);

/// Symbols for a whole workspace: per-file items plus per-crate call
/// graphs and the cross-crate module graph.
pub struct WorkspaceSymbols {
    /// Parallel to the input `SourceFile` slice.
    pub files: Vec<FileSymbols>,
    /// Per crate: fn name → every fn with that name in the crate.
    pub crate_fns: BTreeMap<String, BTreeMap<String, Vec<FnRef>>>,
    /// Module graph: crate → crates it imports from (via `use ent_*::…`
    /// or `ent_*::` paths in imports).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceSymbols {
    /// Parse every file and assemble the graphs.
    pub fn build(sources: &[SourceFile]) -> WorkspaceSymbols {
        let files: Vec<FileSymbols> = sources.iter().map(FileSymbols::parse).collect();
        let mut crate_fns: BTreeMap<String, BTreeMap<String, Vec<FnRef>>> = BTreeMap::new();
        let mut crate_deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, (src, syms)) in sources.iter().zip(files.iter()).enumerate() {
            let by_name = crate_fns.entry(src.crate_name.clone()).or_default();
            for (gi, f) in syms.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
            let deps = crate_deps.entry(src.crate_name.clone()).or_default();
            for u in &syms.imports {
                if let Some(rest) = u.path.strip_prefix("ent_") {
                    if let Some(dep) = rest.split("::").next() {
                        if dep != src.crate_name {
                            deps.insert(dep.to_string());
                        }
                    }
                }
            }
        }
        WorkspaceSymbols { files, crate_fns, crate_deps }
    }

    /// All fns in `crate_name` reachable (by name-matched call edges) from
    /// fns whose names contain any of `root_markers`, roots included.
    pub fn reachable_from_markers(&self, crate_name: &str, root_markers: &[String]) -> BTreeSet<FnRef> {
        let Some(by_name) = self.crate_fns.get(crate_name) else {
            return BTreeSet::new();
        };
        let mut queue: Vec<FnRef> = Vec::new();
        let mut seen: BTreeSet<FnRef> = BTreeSet::new();
        for (name, refs) in by_name {
            let lower = name.to_ascii_lowercase();
            if root_markers.iter().any(|m| lower.contains(m)) {
                for r in refs {
                    if seen.insert(*r) {
                        queue.push(*r);
                    }
                }
            }
        }
        while let Some((fi, gi)) = queue.pop() {
            for callee in &self.files[fi].fns[gi].calls {
                if let Some(refs) = by_name.get(callee) {
                    for r in refs {
                        if seen.insert(*r) {
                            queue.push(*r);
                        }
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), false, src.as_bytes().to_vec())
    }

    #[test]
    fn fn_items_with_params_ret_and_body() {
        let s = sf("pub fn parse(buf: &[u8], off: usize) -> Result<Frame, Error> {\n    helper(off);\n    let m: HashMap<u32, u64> = HashMap::new();\n    m.len();\n}\nfn helper(x: usize) {}\n");
        let syms = FileSymbols::parse(&s);
        assert_eq!(syms.fns.len(), 2);
        let f = &syms.fns[0];
        assert_eq!(f.name, "parse");
        assert!(f.is_pub);
        assert_eq!(f.params, vec![("buf".to_string(), "&[u8]".to_string()), ("off".to_string(), "usize".to_string())]);
        assert_eq!(f.ret.as_deref(), Some("Result<Frame,Error>"));
        assert!(f.calls.contains(&"helper".to_string()));
        assert!(f.calls.contains(&"len".to_string()));
        assert_eq!(f.lets, vec![("m".to_string(), "HashMap<u32,u64>".to_string())]);
        assert!(!syms.fns[1].is_pub);
    }

    #[test]
    fn pub_crate_visibility_and_impl_methods() {
        let s = sf("struct T { inner: HashMap<u32, u64> }\nimpl T {\n    pub(crate) fn finish(&mut self) {\n        self.inner.drain();\n    }\n}\nimpl Drop for T {\n    fn drop(&mut self) {}\n}\n");
        let syms = FileSymbols::parse(&s);
        assert_eq!(syms.structs.len(), 1);
        assert_eq!(syms.structs[0].fields.len(), 1);
        assert_eq!(syms.structs[0].fields[0].0, "inner");
        let finish = syms.fns.iter().find(|f| f.name == "finish").unwrap();
        assert!(finish.is_pub);
        assert_eq!(finish.impl_type.as_deref(), Some("T"));
        let drop_fn = syms.fns.iter().find(|f| f.name == "drop").unwrap();
        assert_eq!(drop_fn.impl_type.as_deref(), Some("T"));
        // Field type resolves from inside the method.
        assert_eq!(syms.binding_type(finish, "inner").map(head_ident), Some("HashMap"));
    }

    #[test]
    fn use_flattening_and_aliases() {
        let s = sf("use std::collections::{HashMap, HashSet};\nuse ent_flow::fasthash::FxHashMap as Fx;\nuse std::io;\n");
        let syms = FileSymbols::parse(&s);
        assert_eq!(syms.import_path("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(syms.import_path("HashSet"), Some("std::collections::HashSet"));
        assert_eq!(syms.import_path("Fx"), Some("ent_flow::fasthash::FxHashMap"));
        assert_eq!(syms.import_path("io"), Some("std::io"));
    }

    #[test]
    fn statics_and_mutability() {
        let s = sf("static mut COUNTER: u64 = 0;\nstatic NAME: &str = \"x\";\nconst LIMIT: usize = 4;\n");
        let syms = FileSymbols::parse(&s);
        assert_eq!(syms.statics.len(), 3);
        assert!(syms.statics[0].is_mut);
        assert_eq!(syms.statics[0].name, "COUNTER");
        assert!(!syms.statics[1].is_mut);
        assert!(!syms.statics[2].is_mut);
    }

    #[test]
    fn type_text_helpers() {
        assert_eq!(head_ident("std::collections::HashMap<K,V>"), "HashMap");
        assert_eq!(head_ident("&mut Vec<u8>"), "Vec");
        assert_eq!(generic_args("HashMap<FlowKey,ConnIndex>"), vec!["FlowKey", "ConnIndex"]);
        assert_eq!(generic_args("HashMap<K,V,RandomState>").len(), 3);
        assert_eq!(generic_args("Result<Vec<(u32,u64)>,Error>"), vec!["Vec<(u32,u64)>", "Error"]);
        assert!(generic_args("usize").is_empty());
    }

    #[test]
    fn call_graph_reachability() {
        let render = SourceFile::new(
            "crates/x/src/report.rs".into(),
            "x".into(),
            false,
            b"pub fn render_report() { table_7(); }\n".to_vec(),
        );
        let table = SourceFile::new(
            "crates/x/src/analyses.rs".into(),
            "x".into(),
            false,
            b"pub fn table_7() { tally(); }\nfn tally() {}\nfn unrelated() {}\n".to_vec(),
        );
        let ws = WorkspaceSymbols::build(&[render, table]);
        let reach = ws.reachable_from_markers("x", &["report".to_string()]);
        let names: Vec<&str> = reach
            .iter()
            .map(|&(fi, gi)| ws.files[fi].fns[gi].name.as_str())
            .collect();
        assert!(names.contains(&"render_report"));
        assert!(names.contains(&"table_7"));
        assert!(names.contains(&"tally"));
        assert!(!names.contains(&"unrelated"));
    }

    #[test]
    fn module_graph_deps() {
        let a = SourceFile::new(
            "crates/core/src/lib.rs".into(),
            "core".into(),
            false,
            b"use ent_flow::ConnTable;\nuse ent_pcap::trace::Trace;\nuse std::io;\n".to_vec(),
        );
        let ws = WorkspaceSymbols::build(&[a]);
        let deps = ws.crate_deps.get("core").unwrap();
        assert!(deps.contains("flow"));
        assert!(deps.contains("pcap"));
        assert!(!deps.contains("io"));
    }

    #[test]
    fn let_initializer_head_and_shadowing() {
        let s = sf("fn f() {\n    let m = HashMap::new();\n    let m = Vec::new();\n    m.iter();\n}\n");
        let syms = FileSymbols::parse(&s);
        let f = &syms.fns[0];
        // Rev lookup: the latest binding wins.
        assert_eq!(syms.binding_type(f, "m"), Some("Vec"));
    }

    #[test]
    fn fn_at_line_innermost() {
        let s = sf("fn outer() {\n    fn inner() {\n        x();\n    }\n}\n");
        let syms = FileSymbols::parse(&s);
        assert_eq!(syms.fn_at_line(&s, 3).map(|f| f.name.as_str()), Some("inner"));
    }
}
