//! The lint rules E001–E005.
//!
//! Each check walks the token streams produced by [`crate::lexer`] and
//! emits [`Finding`]s. Suppression filtering happens centrally in
//! [`crate::lint_sources`], so checks report everything they see.

use crate::config::LintConfig;
use crate::report::{Code, Finding, Severity};
use crate::source::SourceFile;
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet};

fn finding(code: Code, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding { code, severity: Severity::Error, file: file.rel.clone(), line, message }
}

/// Keywords that can precede a `[` without making it an index expression
/// (`if let [a, b] = …`, `return [x]`, `in [..]`).
const KEYWORDS: [&str; 24] = [
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break",
    "continue", "where", "use", "pub", "const", "static", "fn", "impl", "for", "while", "loop",
    "struct", "enum",
];

/// Is `name` const-like (SCREAMING_SNAKE_CASE)? Indexing with a named
/// constant is treated like a literal index: it is part of the audited
/// up-front-length-check idiom, not a computed offset.
fn const_like(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
        && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Does `name` look like it carries a wire length/offset?
fn lenish(name: &str, cfg: &LintConfig) -> bool {
    let lower = name.to_ascii_lowercase();
    cfg.lenish_markers.iter().any(|m| lower.contains(m))
}

/// Is the `fn` named `name` a parser hot path?
fn hot_fn(name: &str, cfg: &LintConfig) -> bool {
    let lower = name.to_ascii_lowercase();
    cfg.hot_fn_markers.iter().any(|m| lower.contains(m))
}

/// E001: panic surface in ingest crates — panicking calls/macros and
/// computed slice indexing in non-test code.
pub fn e001(file: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    if !cfg.panic_crates.iter().any(|c| c == &file.crate_name) || file.is_test_file {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..file.toks.len() {
        let t = &file.toks[i];
        if t.kind == TokKind::Comment || file.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident {
            let text = file.text(i);
            match text.as_ref() {
                "unwrap" | "expect" | "unwrap_err" | "expect_err" => {
                    let dot = file.prev_sig(i).is_some_and(|p| file.toks[p].kind == TokKind::Punct('.'));
                    let call = file.next_sig(i).is_some_and(|n| file.toks[n].kind == TokKind::Punct('('));
                    if dot && call {
                        out.push(finding(
                            Code::E001,
                            file,
                            t.line,
                            format!("call to `.{text}()` in ingest code can abort on hostile input; propagate an error or use a total fallback"),
                        ));
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if file.next_sig(i).is_some_and(|n| file.toks[n].kind == TokKind::Punct('!')) =>
                {
                    out.push(finding(
                        Code::E001,
                        file,
                        t.line,
                        format!("`{text}!` in ingest code aborts the pipeline; degrade gracefully instead"),
                    ));
                }
                _ => {}
            }
        } else if t.kind == TokKind::Punct('[') {
            // Indexing: `expr[...]` where expr ends with an ident, `)` or `]`.
            let Some(p) = file.prev_sig(i) else { continue };
            let is_index = match file.toks[p].kind {
                TokKind::Ident => !KEYWORDS.contains(&file.text(p).as_ref()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if !is_index {
                continue;
            }
            // `#[...]` attributes: previous significant token is `#` or `!`,
            // already excluded; `ident!` macro calls have `!` before `[`.
            let Some(close) = file.matching_close(i) else { continue };
            let mut computed = false;
            for j in i + 1..close {
                match file.toks[j].kind {
                    TokKind::Ident if !const_like(&file.text(j)) => {
                        computed = true;
                        break;
                    }
                    TokKind::Str => {
                        computed = true;
                        break;
                    }
                    _ => {}
                }
            }
            if computed {
                out.push(finding(
                    Code::E001,
                    file,
                    t.line,
                    "indexing with a computed offset can panic on truncated input; use `.get(..)` with a total fallback (or justify with an `ent-lint: allow(E001)` after auditing)".to_string(),
                ));
            }
        }
    }
    out
}

/// E002: unchecked offset arithmetic and truncating casts of
/// length-derived values inside parser hot paths; in the named hot-map
/// modules ([`LintConfig::hot_map_files`]), also any construction of a
/// std-SipHash `HashMap` where the pre-sized fx-hash form is required;
/// in the named hot-allocation modules ([`LintConfig::hot_alloc_files`]),
/// also any ad-hoc `Vec` allocation where the arena buffer is required.
pub fn e002(file: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if !file.is_test_file && cfg.hot_map_files.iter().any(|f| f == &file.rel) {
        hot_map_scan(file, &mut out);
    }
    if !file.is_test_file && cfg.hot_alloc_files.iter().any(|f| f == &file.rel) {
        hot_alloc_scan(file, &mut out);
    }
    if !cfg.arith_crates.iter().any(|c| c == &file.crate_name) || file.is_test_file {
        return out;
    }
    for i in 0..file.toks.len() {
        let t = &file.toks[i];
        if t.kind == TokKind::Comment || file.is_test_line(t.line) {
            continue;
        }
        let in_hot = file.enclosing_fn(t.line).is_some_and(|n| hot_fn(n, cfg));
        if !in_hot {
            continue;
        }
        if t.kind == TokKind::Ident && file.text(i) == "as" {
            let Some(n) = file.next_sig(i) else { continue };
            let target = file.text(n);
            let truncating = matches!(target.as_ref(), "u8" | "u16" | "u32" | "i8" | "i16" | "i32");
            if truncating && operand_is_lenish(file, i, cfg) {
                out.push(finding(
                    Code::E002,
                    file,
                    t.line,
                    format!("truncating `as {target}` cast of a length-derived value in a parser hot path; use `try_from` or an explicit clamp"),
                ));
            }
        } else if let TokKind::Punct(op @ ('+' | '-' | '*')) = t.kind {
            let Some(p) = file.prev_sig(i) else { continue };
            let Some(n) = file.next_sig(i) else { continue };
            // Binary only: previous token must be an operand end.
            let binary = matches!(file.toks[p].kind, TokKind::Ident | TokKind::Num | TokKind::Punct(')') | TokKind::Punct(']'));
            if !binary {
                continue;
            }
            // `->` arrow, `*=`-style compound handled: `+=`/`-=`/`*=` have
            // ident before them and `=` after — still arithmetic, keep them.
            if op == '-' && file.toks[n].kind == TokKind::Punct('>') {
                continue;
            }
            let prev_lenish = match file.toks[p].kind {
                TokKind::Ident => lenish(&file.text(p), cfg),
                TokKind::Punct(')') => call_is_lenish(file, p, cfg),
                _ => false,
            };
            let next_lenish = file.toks[n].kind == TokKind::Ident && lenish(&file.text(n), cfg);
            if prev_lenish || next_lenish {
                let line_text = file.line_text(t.line);
                if line_text.contains("checked_")
                    || line_text.contains("saturating_")
                    || line_text.contains("wrapping_")
                {
                    continue;
                }
                out.push(finding(
                    Code::E002,
                    file,
                    t.line,
                    format!("unchecked `{op}` on a length-derived value in a parser hot path; use `checked_`/`saturating_` arithmetic"),
                ));
            }
        }
    }
    out
}

/// The hot-map half of E002: flag `HashMap::new()` / `HashMap::default()`
/// / `HashMap::with_capacity(..)` — the constructors that silently pick
/// SipHash-`RandomState` — in modules on the per-packet path. The
/// hasher-explicit forms (`with_hasher`, `with_capacity_and_hasher`) and
/// the `FxHashMap` alias pass.
fn hot_map_scan(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.toks.len() {
        let t = &file.toks[i];
        if t.kind != TokKind::Ident || file.is_test_line(t.line) || file.text(i) != "HashMap" {
            continue;
        }
        let Some(c1) = file.next_sig(i) else { continue };
        let Some(c2) = file.next_sig(c1) else { continue };
        let Some(m) = file.next_sig(c2) else { continue };
        if file.toks[c1].kind != TokKind::Punct(':')
            || file.toks[c2].kind != TokKind::Punct(':')
            || file.toks[m].kind != TokKind::Ident
        {
            continue;
        }
        let method = file.text(m);
        if matches!(method.as_ref(), "new" | "default" | "with_capacity") {
            out.push(finding(
                Code::E002,
                file,
                t.line,
                format!("std-SipHash `HashMap::{method}` in a hot-path module; use the pre-sized fx-hash form (`fx_map_with_capacity` / `with_capacity_and_hasher`, see crates/flow/src/fasthash.rs)"),
            ));
        }
    }
}

/// The hot-allocation half of E002: flag `Vec::new()`, `vec![..]` and
/// `.to_vec()` — the forms that heap-allocate per call — in modules on the
/// per-packet emission path. Those paths write through a reused
/// [`PacketArena`] buffer (`frame_buf` / `extend_from_slice`), so a fresh
/// `Vec` per packet is exactly the allocation churn the arena rework
/// removed; reintroducing one compiles fine and silently costs ~2x.
fn hot_alloc_scan(file: &SourceFile, out: &mut Vec<Finding>) {
    let flag = |out: &mut Vec<Finding>, line: u32, what: &str| {
        out.push(finding(
            Code::E002,
            file,
            line,
            format!("per-call heap allocation (`{what}`) in a hot emission module; write through the reused arena buffer instead (see crates/pcap/src/arena.rs)"),
        ));
    };
    for i in 0..file.toks.len() {
        let t = &file.toks[i];
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        match file.text(i).as_ref() {
            // `vec![..]` — ident `vec` directly followed by `!`.
            "vec" if file.next_sig(i).is_some_and(|n| file.toks[n].kind == TokKind::Punct('!')) => {
                flag(out, t.line, "vec![..]");
            }
            // `Vec::new()` — the empty-growable constructor. The sized
            // forms (`with_capacity`) pass: one-time setup buffers are
            // fine, it is the per-call empty Vec that churns.
            "Vec" => {
                let Some(c1) = file.next_sig(i) else { continue };
                let Some(c2) = file.next_sig(c1) else { continue };
                let Some(m) = file.next_sig(c2) else { continue };
                if file.toks[c1].kind == TokKind::Punct(':')
                    && file.toks[c2].kind == TokKind::Punct(':')
                    && file.toks[m].kind == TokKind::Ident
                    && file.text(m) == "new"
                {
                    flag(out, t.line, "Vec::new()");
                }
            }
            // `.to_vec()` — method call only (ident preceded by `.`), so a
            // local named `to_vec` would not trip it.
            "to_vec" if file.prev_sig(i).is_some_and(|p| file.toks[p].kind == TokKind::Punct('.')) => {
                flag(out, t.line, ".to_vec()");
            }
            _ => {}
        }
    }
}

/// For `…) as u16` / `…) + off`: scan the parenthesized operand ending at
/// `close_idx` (a `)`) plus the callee ident before the `(` for a lenish
/// name (`buf.len()`, `(total_len + 4)`).
fn call_is_lenish(file: &SourceFile, close_idx: usize, cfg: &LintConfig) -> bool {
    let mut depth = 0i64;
    let mut open = None;
    for j in (0..=close_idx).rev() {
        match file.toks[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    open = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(open) = open else { return false };
    for j in open..close_idx {
        if file.toks[j].kind == TokKind::Ident && lenish(&file.text(j), cfg) {
            return true;
        }
    }
    if let Some(callee) = file.prev_sig(open) {
        if file.toks[callee].kind == TokKind::Ident && lenish(&file.text(callee), cfg) {
            return true;
        }
    }
    false
}

/// The operand of `… as uN` ending just before token `as_idx`.
fn operand_is_lenish(file: &SourceFile, as_idx: usize, cfg: &LintConfig) -> bool {
    let Some(p) = file.prev_sig(as_idx) else { return false };
    match file.toks[p].kind {
        TokKind::Ident => lenish(&file.text(p), cfg),
        TokKind::Punct(')') => call_is_lenish(file, p, cfg),
        _ => false,
    }
}

/// E003: crate roots must carry the hygiene attributes.
pub fn e003(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        let is_root = file.rel.starts_with("crates/")
            && (file.rel.ends_with("/src/lib.rs") || file.rel.ends_with("/src/main.rs"));
        if !is_root {
            continue;
        }
        let mut has_forbid_unsafe = false;
        let mut has_deny_missing_docs = false;
        let mut has_unwrap_gate = false;
        let mut i = 0usize;
        while i + 2 < file.toks.len() {
            if file.toks[i].kind == TokKind::Punct('#')
                && file.toks[i + 1].kind == TokKind::Punct('!')
                && file.toks[i + 2].kind == TokKind::Punct('[')
            {
                if let Some(close) = file.matching_close(i + 2) {
                    let mut canon = String::new();
                    for j in i + 3..close {
                        if file.toks[j].kind != TokKind::Comment {
                            canon.push_str(&file.text(j));
                        }
                    }
                    if canon.starts_with("forbid(") && canon.contains("unsafe_code") {
                        has_forbid_unsafe = true;
                    }
                    if canon.starts_with("deny(") && canon.contains("missing_docs") {
                        has_deny_missing_docs = true;
                    }
                    if canon.starts_with("cfg_attr(not(test)")
                        && canon.contains("clippy::unwrap_used")
                        && canon.contains("clippy::expect_used")
                    {
                        has_unwrap_gate = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        let mut missing = Vec::new();
        if !has_forbid_unsafe {
            missing.push("#![forbid(unsafe_code)]");
        }
        if !has_deny_missing_docs {
            missing.push("#![deny(missing_docs)]");
        }
        if !has_unwrap_gate {
            missing.push("#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]");
        }
        for attr in missing {
            out.push(finding(
                Code::E003,
                file,
                1,
                format!("crate `{}` root is missing `{attr}`", file.crate_name),
            ));
        }
    }
    out
}

/// E004: every analyzer module under `crates/proto/src/` must appear in
/// `registry.rs`'s `ANALYZER_MODULES`, and every listed name must have a
/// module file.
pub fn e004(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut modules = BTreeSet::new();
    let mut registry: Option<&SourceFile> = None;
    for file in files {
        let Some(rest) = file.rel.strip_prefix("crates/proto/src/") else { continue };
        if rest.contains('/') {
            continue;
        }
        let Some(stem) = rest.strip_suffix(".rs") else { continue };
        match stem {
            "lib" | "mod" => {}
            "registry" => registry = Some(file),
            _ => {
                modules.insert(stem.to_string());
            }
        }
    }
    if modules.is_empty() && registry.is_none() {
        return out; // workspace has no proto crate (e.g. fixture trees)
    }
    let Some(reg) = registry else {
        if let Some(any) = files.iter().find(|f| f.rel.starts_with("crates/proto/src/")) {
            out.push(finding(
                Code::E004,
                any,
                1,
                "crates/proto/src/registry.rs not found; analyzer modules cannot be checked for registration".to_string(),
            ));
        }
        return out;
    };
    // Locate `ANALYZER_MODULES` and collect its string entries.
    let mut listed: BTreeMap<String, u32> = BTreeMap::new();
    let mut const_line = None;
    for i in 0..reg.toks.len() {
        if reg.toks[i].kind == TokKind::Ident && reg.text(i) == "ANALYZER_MODULES" {
            const_line = Some(reg.toks[i].line);
            for j in i + 1..reg.toks.len() {
                match reg.toks[j].kind {
                    TokKind::Str => {
                        let raw = reg.text(j);
                        let name = raw.trim_matches(|c| c == '"');
                        listed.insert(name.to_string(), reg.toks[j].line);
                    }
                    TokKind::Punct(';') => break,
                    _ => {}
                }
            }
            break;
        }
    }
    let Some(const_line) = const_line else {
        out.push(finding(
            Code::E004,
            reg,
            1,
            "registry.rs does not declare `ANALYZER_MODULES`; the protocol registry cannot be checked for totality".to_string(),
        ));
        return out;
    };
    for m in &modules {
        if !listed.contains_key(m) {
            out.push(finding(
                Code::E004,
                reg,
                const_line,
                format!("analyzer module `{m}.rs` is not listed in ANALYZER_MODULES; wire it into the registry"),
            ));
        }
    }
    for (m, line) in &listed {
        if !modules.contains(m) {
            out.push(finding(
                Code::E004,
                reg,
                *line,
                format!("ANALYZER_MODULES lists `{m}` but crates/proto/src/{m}.rs does not exist"),
            ));
        }
    }
    out
}

/// Extract `(kind, number)` paper-artifact IDs (`Table 7`, `Figure 10`)
/// from one line of text. Matching is case-insensitive and
/// word-boundary-exact on the number (a `Figure 1` claim is not covered by
/// a `Figure 10` reference).
fn artifact_ids(line: &str) -> Vec<(String, u32)> {
    let lower = line.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut out = Vec::new();
    for kind in ["table", "figure"] {
        let mut from = 0usize;
        while let Some(pos) = lower[from..].find(kind) {
            let at = from + pos;
            from = at + kind.len();
            // Word boundary on the left.
            if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
                continue;
            }
            let rest = &lower[at + kind.len()..];
            let rest_trim = rest.trim_start_matches([' ', '\t']);
            if rest_trim.len() == rest.len() && !rest.is_empty() {
                continue; // "tables", "figures", "table4" — not an ID claim
            }
            let digits: String = rest_trim.chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.is_empty() {
                continue;
            }
            // Word boundary on the right of the number.
            let after = rest_trim[digits.len()..].chars().next();
            if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            if let Ok(n) = digits.parse::<u32>() {
                out.push((kind.to_string(), n));
            }
        }
    }
    out
}

/// E005: every paper artifact claimed in `crates/core/src/analyses` must be
/// referenced from test context (a file under `tests/`, or a
/// `#[cfg(test)]` region anywhere in the workspace).
pub fn e005(files: &[SourceFile]) -> Vec<Finding> {
    // Claims: first claiming site per artifact.
    let mut claims: BTreeMap<(String, u32), (usize, u32)> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.rel.starts_with("crates/core/src/analyses/") {
            continue;
        }
        for line in 1..=file.line_count() {
            for id in artifact_ids(&file.line_text(line)) {
                claims.entry(id).or_insert((fi, line));
            }
        }
    }
    if claims.is_empty() {
        return Vec::new();
    }
    // Coverage: IDs mentioned anywhere in test context.
    let mut covered: BTreeSet<(String, u32)> = BTreeSet::new();
    for file in files {
        for line in 1..=file.line_count() {
            if !file.is_test_line(line) {
                continue;
            }
            for id in artifact_ids(&file.line_text(line)) {
                covered.insert(id);
            }
        }
    }
    let mut out = Vec::new();
    for ((kind, n), (fi, line)) in &claims {
        if !covered.contains(&(kind.clone(), *n)) {
            let file = &files[*fi];
            let cap = {
                let mut c = kind.clone();
                if let Some(first) = c.get_mut(0..1) {
                    first.make_ascii_uppercase();
                }
                c
            };
            out.push(finding(
                Code::E005,
                file,
                *line,
                format!("{cap} {n} is claimed here but never referenced from any test; add a test that mentions `{cap} {n}`"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn wire_file(src: &str) -> SourceFile {
        SourceFile::new("crates/wire/src/x.rs".into(), "wire".into(), false, src.as_bytes().to_vec())
    }

    #[test]
    fn e001_flags_unwrap_and_macros() {
        let cfg = LintConfig::default();
        let f = wire_file("fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\nfn g() {\n    panic!(\"boom\");\n}\n");
        let got = e001(&f, &cfg);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[1].line, 5);
    }

    #[test]
    fn e001_ignores_test_regions_and_literal_indexing() {
        let cfg = LintConfig::default();
        let f = wire_file(
            "fn f(b: &[u8]) -> u8 {\n    b[0] ^ b[4..8][0] ^ b[MIN_LEN]\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(e001(&f, &cfg).is_empty());
    }

    #[test]
    fn e001_flags_computed_indexing() {
        let cfg = LintConfig::default();
        let f = wire_file("fn f(b: &[u8], off: usize) -> u8 {\n    b[off]\n}\n");
        let got = e001(&f, &cfg);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn e001_out_of_scope_crate_is_ignored() {
        let cfg = LintConfig::default();
        let f = SourceFile::new("crates/gen/src/x.rs".into(), "gen".into(), false, b"fn f() { x.unwrap(); }".to_vec());
        assert!(e001(&f, &cfg).is_empty());
    }

    #[test]
    fn e002_flags_hot_path_arith_and_casts() {
        let cfg = LintConfig::default();
        let f = wire_file(
            "fn parse(b: &[u8], off: usize, total_len: usize) -> u16 {\n    let end = off + 4;\n    total_len as u16\n}\nfn helper(off: usize) -> usize {\n    off + 4\n}\n",
        );
        let got = e002(&f, &cfg);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0].line, 2);
        assert_eq!(got[1].line, 3);
    }

    #[test]
    fn e002_checked_forms_pass() {
        let cfg = LintConfig::default();
        let f = wire_file("fn parse(off: usize) -> Option<usize> {\n    off.checked_add(4)\n}\n");
        assert!(e002(&f, &cfg).is_empty());
    }

    #[test]
    fn e002_len_call_cast() {
        let cfg = LintConfig::default();
        let f = wire_file("fn read_rec(b: &[u8]) -> u32 {\n    b.len() as u32\n}\n");
        assert_eq!(e002(&f, &cfg).len(), 1);
    }

    #[test]
    fn e002_hot_alloc_flags_per_call_allocation() {
        let cfg = LintConfig::default();
        let f = SourceFile::new(
            "crates/gen/src/synth.rs".into(),
            "gen".into(),
            false,
            b"fn emit() -> Vec<u8> {\n    let mut f = Vec::new();\n    f.extend_from_slice(&vec![0u8; 4]);\n    f[..2].to_vec()\n}\n".to_vec(),
        );
        let got = e002(&f, &cfg);
        assert_eq!(got.len(), 3, "{got:?}");
        assert_eq!(got[0].line, 2);
        assert_eq!(got[1].line, 3);
        assert_eq!(got[2].line, 4);
        assert!(got.iter().all(|f| f.code == Code::E002));
    }

    #[test]
    fn e002_hot_alloc_reused_and_sized_forms_pass() {
        let cfg = LintConfig::default();
        // with_capacity setup, writing through a reused buffer, a local
        // *named* to_vec, and test-region allocation are all out of scope.
        let f = SourceFile::new(
            "crates/gen/src/synth.rs".into(),
            "gen".into(),
            false,
            b"fn setup(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\nfn emit(buf: &mut Vec<u8>, to_vec: u8) {\n    buf.push(to_vec);\n}\n#[cfg(test)]\nmod tests {\n    fn t() -> Vec<u8> { vec![1, 2].to_vec() }\n}\n".to_vec(),
        );
        assert!(e002(&f, &cfg).is_empty(), "{:?}", e002(&f, &cfg));
    }

    #[test]
    fn e002_hot_alloc_only_in_listed_files() {
        let cfg = LintConfig::default();
        // Same patterns in a non-listed gen module stay quiet (gen is not
        // an arith crate either, so e002 has no other reason to look).
        // The app generators are all listed now, so the example is the
        // site-modeling layer, which runs per trace rather than per packet.
        let f = SourceFile::new(
            "crates/gen/src/network.rs".into(),
            "gen".into(),
            false,
            b"fn emit() -> Vec<u8> {\n    Vec::new()\n}\n".to_vec(),
        );
        assert!(e002(&f, &cfg).is_empty());
    }

    #[test]
    fn e003_reports_each_missing_attr() {
        let lib = SourceFile::new(
            "crates/foo/src/lib.rs".into(),
            "foo".into(),
            false,
            b"#![forbid(unsafe_code)]\npub fn x() {}\n".to_vec(),
        );
        let got = e003(&[lib]);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|f| f.code == Code::E003));
    }

    #[test]
    fn e003_satisfied_root_is_clean() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n";
        let lib = SourceFile::new("crates/foo/src/lib.rs".into(), "foo".into(), false, src.as_bytes().to_vec());
        assert!(e003(&[lib]).is_empty());
    }

    #[test]
    fn artifact_id_extraction() {
        assert_eq!(artifact_ids("reproduces Table 7 and Figure 10"), vec![("table".into(), 7), ("figure".into(), 10)]);
        assert_eq!(artifact_ids("tables and figures in general"), vec![]);
        assert_eq!(artifact_ids("Figure 1"), vec![("figure".into(), 1)]);
        // `Figure 10` must not cover `Figure 1`.
        assert_ne!(artifact_ids("Figure 10"), vec![("figure".into(), 1)]);
    }

    #[test]
    fn e005_claim_without_test_reference() {
        let claim = SourceFile::new(
            "crates/core/src/analyses/foo.rs".into(),
            "core".into(),
            false,
            b"//! Reproduces Table 99 of the paper.\npub fn t() {}\n".to_vec(),
        );
        let test = SourceFile::new(
            "tests/tests/t.rs".into(),
            "tests".into(),
            true,
            b"// checks Table 98 only\n".to_vec(),
        );
        let got = e005(&[claim, test]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("Table 99"));
    }

    #[test]
    fn e005_covered_by_cfg_test_region() {
        let claim = SourceFile::new(
            "crates/core/src/analyses/foo.rs".into(),
            "core".into(),
            false,
            b"//! Reproduces Table 99.\n#[cfg(test)]\nmod tests {\n    // asserts Table 99 shape\n}\n".to_vec(),
        );
        assert!(e005(&[claim]).is_empty());
    }
}
