//! Lint configuration: which crates each check covers and the name
//! heuristics used by the token-level rules.

/// Tunable scope for the checks. [`LintConfig::default`] encodes the
/// workspace policy that the tier-1 self-host test enforces.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose non-test code must be panic-free (E001). These are the
    /// crates on the ingest path: a panic here aborts trace analysis.
    pub panic_crates: Vec<String>,
    /// Crates whose parser hot paths are checked for unchecked offset
    /// arithmetic and truncating casts (E002).
    pub arith_crates: Vec<String>,
    /// Substrings identifying parser hot-path function names for E002.
    pub hot_fn_markers: Vec<String>,
    /// Substrings identifying length/offset-carrying identifiers for E002.
    pub lenish_markers: Vec<String>,
    /// Workspace-relative paths of per-packet hot-path modules in which
    /// E002 also forbids constructing a std-SipHash `HashMap` (`new` /
    /// `default` / `with_capacity`): these maps were deliberately moved to
    /// the pre-sized fx-hash forms, and a reintroduced default map is a
    /// silent perf regression the compiler will not catch.
    pub hot_map_files: Vec<String>,
    /// Workspace-relative paths of per-packet emission modules in which
    /// E002 also forbids ad-hoc heap allocation (`Vec::new()` / `vec![..]`
    /// / `.to_vec()`): these paths were rebuilt around arena buffers, and
    /// a reintroduced per-packet `Vec` is a silent throughput regression
    /// the compiler will not catch.
    pub hot_alloc_files: Vec<String>,
    /// Crates whose analysis output must be bit-reproducible (E006): std
    /// unordered-map iteration reaching a sink, wall-clock reads and float
    /// accumulation over unordered iteration are flagged here.
    pub determinism_crates: Vec<String>,
    /// Substrings of fn names treated as determinism *sinks* for E006:
    /// anything these fns (transitively) call must not leak unordered-map
    /// iteration order.
    pub sink_fn_markers: Vec<String>,
    /// Tokens whose presence in the same statement marks an unordered-map
    /// iteration as order-insensitive (commutative reductions, set/sorted
    /// collection targets) and therefore E006-clean.
    pub order_insensitive_markers: Vec<String>,
    /// Files exempt from the E006 wall-clock rule: deliberate wall-clock
    /// observability (stage timers) lives here and never feeds results.
    pub wall_clock_files: Vec<String>,
    /// Crates that will run worker-side once flow tracking shards (E007):
    /// no `static mut`, no non-`Sync` interior mutability, no locks in
    /// per-packet hot functions.
    pub worker_crates: Vec<String>,
    /// Crates whose public fallible API must use the typed error taxonomy
    /// (E008).
    pub error_crates: Vec<String>,
    /// Head identifiers of the approved error-taxonomy types for E008.
    pub taxonomy_errors: Vec<String>,
    /// Substrings of fn names that imply a fallible operation for E008's
    /// `bool`/`Option` smuggling rule (predicates like `is_*` stay legal).
    pub fallible_fn_markers: Vec<String>,
    /// Crates holding test/bench harness code, swept by the E001-lite pass
    /// (panic-surface rules outside `#[test]`/`#[cfg(test)]` regions).
    pub harness_crates: Vec<String>,
    /// File and struct holding the checkpoint payload for E009: every
    /// field of `(file, struct)` must appear in test code somewhere in the
    /// workspace.
    pub checkpoint_payload: (String, String),
    /// Files whose `ent-bench-*` JSON emitters are key-checked by E009.
    pub bench_emitter_files: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        LintConfig {
            panic_crates: v(&["wire", "pcap", "proto", "flow", "core"]),
            arith_crates: v(&["wire", "pcap", "proto"]),
            hot_fn_markers: v(&["parse", "read", "next", "decode", "feed", "recover", "resync", "merge", "ingest"]),
            lenish_markers: v(&["len", "off", "size", "total", "ihl", "cap", "snap", "pos", "idx", "count"]),
            hot_map_files: v(&[
                "crates/flow/src/table.rs",
                "crates/core/src/pipeline.rs",
                "crates/flow/src/shard.rs",
                "crates/core/src/shard.rs",
            ]),
            hot_alloc_files: v(&[
                "crates/gen/src/synth.rs",
                "crates/wire/src/build.rs",
                "crates/gen/src/apps/mod.rs",
                "crates/gen/src/apps/backup.rs",
                "crates/gen/src/apps/bulk_interactive.rs",
                "crates/gen/src/apps/email.rs",
                "crates/gen/src/apps/mgmt.rs",
                "crates/gen/src/apps/name.rs",
                "crates/gen/src/apps/netfile.rs",
                "crates/gen/src/apps/nonip.rs",
                "crates/gen/src/apps/scanner.rs",
                "crates/gen/src/apps/streaming.rs",
                "crates/gen/src/apps/web.rs",
                "crates/gen/src/apps/windows.rs",
            ]),
            determinism_crates: v(&["flow", "proto", "core"]),
            sink_fn_markers: v(&["report", "render", "signature", "finalize", "finish", "emit", "summar"]),
            order_insensitive_markers: v(&[
                "sort", "sort_unstable", "sort_by", "sort_by_key", "sum", "count", "len",
                "max", "min", "max_by_key", "min_by_key", "all", "any", "contains",
                "contains_key", "fold_commutative", "HashSet", "BTreeMap", "BTreeSet", "Ecdf",
                "extend", "insert", "saturating_add", "wrapping_add",
            ]),
            wall_clock_files: v(&["crates/core/src/metrics.rs"]),
            worker_crates: v(&["flow", "core", "proto", "pcap"]),
            error_crates: v(&["wire", "pcap", "flow", "core"]),
            taxonomy_errors: v(&[
                "AnalysisError", "PcapError", "CheckpointError", "BenchJsonError", "Error",
                "io::Error", "fmt::Error",
            ]),
            fallible_fn_markers: v(&["load", "open", "save", "persist", "restore", "resume", "flush", "commit"]),
            harness_crates: v(&["tests", "bench"]),
            checkpoint_payload: ("crates/core/src/checkpoint.rs".to_string(), "Checkpoint".to_string()),
            bench_emitter_files: v(&["crates/core/src/metrics.rs"]),
        }
    }
}
