//! Lint configuration: which crates each check covers and the name
//! heuristics used by the token-level rules.

/// Tunable scope for the checks. [`LintConfig::default`] encodes the
/// workspace policy that the tier-1 self-host test enforces.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose non-test code must be panic-free (E001). These are the
    /// crates on the ingest path: a panic here aborts trace analysis.
    pub panic_crates: Vec<String>,
    /// Crates whose parser hot paths are checked for unchecked offset
    /// arithmetic and truncating casts (E002).
    pub arith_crates: Vec<String>,
    /// Substrings identifying parser hot-path function names for E002.
    pub hot_fn_markers: Vec<String>,
    /// Substrings identifying length/offset-carrying identifiers for E002.
    pub lenish_markers: Vec<String>,
    /// Workspace-relative paths of per-packet hot-path modules in which
    /// E002 also forbids constructing a std-SipHash `HashMap` (`new` /
    /// `default` / `with_capacity`): these maps were deliberately moved to
    /// the pre-sized fx-hash forms, and a reintroduced default map is a
    /// silent perf regression the compiler will not catch.
    pub hot_map_files: Vec<String>,
    /// Workspace-relative paths of per-packet emission modules in which
    /// E002 also forbids ad-hoc heap allocation (`Vec::new()` / `vec![..]`
    /// / `.to_vec()`): these paths were rebuilt around arena buffers, and
    /// a reintroduced per-packet `Vec` is a silent throughput regression
    /// the compiler will not catch.
    pub hot_alloc_files: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        LintConfig {
            panic_crates: v(&["wire", "pcap", "proto", "flow", "core"]),
            arith_crates: v(&["wire", "pcap", "proto"]),
            hot_fn_markers: v(&["parse", "read", "next", "decode", "feed", "recover", "resync", "merge", "ingest"]),
            lenish_markers: v(&["len", "off", "size", "total", "ihl", "cap", "snap", "pos", "idx", "count"]),
            hot_map_files: v(&["crates/flow/src/table.rs", "crates/core/src/pipeline.rs"]),
            hot_alloc_files: v(&["crates/gen/src/synth.rs", "crates/wire/src/build.rs"]),
        }
    }
}
