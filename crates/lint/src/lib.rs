//! # ent-lint — workspace static analysis for parser-safety invariants
//!
//! An offline, dependency-free analyzer that machine-checks the repo
//! invariants PR 1's graceful-degradation work relies on. It lexes the
//! workspace with a hand-rolled Rust lexer (no `syn`: the build is
//! vendored-only), builds a per-file symbol table plus an approximate
//! intra-crate call graph ([`symbols`]), and enforces nine coded lints:
//!
//! | code | invariant |
//! |------|-----------|
//! | E001 | no panic surface (`unwrap`/`expect`/`panic!`/`unreachable!`/computed indexing) in non-test ingest code (`wire`, `pcap`, `proto`, `flow`, `core`); an E001-lite sweep (bare `unwrap`, `todo!`/`unimplemented!`) also covers harness code in `tests`/`bench` outside `#[test]`/`#[cfg(test)]` regions |
//! | E002 | no unchecked offset arithmetic or truncating casts of length-derived values in parser hot paths (`wire`, `pcap`, `proto`); no std-SipHash `HashMap::new`/`default`/`with_capacity` in the named hot-map modules (`flow/table.rs`, `core/pipeline.rs`); no per-call `Vec::new()`/`vec![..]`/`.to_vec()` allocation in the named hot emission modules (`gen/synth.rs`, `wire/build.rs`) |
//! | E003 | every crate root carries `#![forbid(unsafe_code)]`, `#![deny(missing_docs)]` and the `cfg_attr(not(test))` unwrap/expect gate |
//! | E004 | every `crates/proto/src/*.rs` analyzer module is listed in `registry.rs`'s `ANALYZER_MODULES` (and vice versa) |
//! | E005 | every `Table N`/`Figure N` claimed in `crates/core/src/analyses` is referenced from test code |
//! | E006 | no nondeterminism on report-feeding paths in analysis crates: std `HashMap`/`HashSet` iteration reaching a report/signature/finalize sink without a sort or order-insensitive reduction, wall-clock/thread-id/env reads, float accumulation over unordered iteration |
//! | E007 | shared-state discipline for sharded workers: no `static mut`, no non-`Sync` interior mutability (`RefCell`/`Cell`/`Rc`) in worker-side crates, no lock acquisition inside per-packet hot functions |
//! | E008 | error-taxonomy totality: public fallible fns in ingest crates return typed taxonomy errors — no `Result<_, String>`, no `bool`/`Option` smuggling on fallible-verb names, no truncating `as` casts inside `Err(..)` construction |
//! | E009 | checkpoint/bench schema hygiene: every `Checkpoint` payload field and every key the `ent-bench-*` JSON emitters write is referenced from test code |
//!
//! E006–E009 are symbol-aware: they consult the call graph
//! ([`symbols::WorkspaceSymbols`]) rather than matching tokens alone, so a
//! map iteration is only a finding when its enclosing function actually
//! reaches a sink. Findings carry `file:line` anchors and can be emitted
//! as JSON (`ent-lint --json`, schema tag [`report::JSON_SCHEMA`]). A
//! finding is silenced by an inline comment on the same line or the line
//! above:
//!
//! ```text
//! // ent-lint: allow(E001) — index bounded by the length check above
//! let b = buf[off];
//! ```
//!
//! The workspace runs `ent-lint` self-hosted as a tier-1 test
//! (`crates/lint/tests/selfhost.rs`): the tree must stay at zero findings.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checks;
pub mod checks_det;
pub mod config;
pub mod lexer;
pub mod report;
pub mod source;
pub mod symbols;
pub mod walk;

pub use config::LintConfig;
pub use report::{Code, Finding, Report, Severity};

use source::SourceFile;
use std::io;
use std::path::Path;

/// Lint a whole workspace rooted at `root` (the directory holding
/// `crates/`). Reads every `.rs` file outside skipped directories, runs
/// all checks, applies inline suppressions, and returns the sorted report.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let entries = walk::walk_workspace(root)?;
    let mut sources = Vec::with_capacity(entries.len());
    for e in entries {
        let bytes = std::fs::read(&e.abs)?;
        sources.push(SourceFile::new(e.rel, e.crate_name, e.is_test_file, bytes));
    }
    Ok(lint_sources(sources, cfg))
}

/// Run all checks over pre-loaded sources. Exposed for the fixture tests.
pub fn lint_sources(sources: Vec<SourceFile>, cfg: &LintConfig) -> Report {
    let mut findings = Vec::new();
    for file in &sources {
        findings.extend(checks::e001(file, cfg));
        findings.extend(checks::e002(file, cfg));
    }
    findings.extend(checks::e003(&sources));
    findings.extend(checks::e004(&sources));
    findings.extend(checks::e005(&sources));
    findings.extend(checks_det::symbol_checks(&sources, cfg));

    let mut suppressed = 0usize;
    findings.retain(|f| {
        let keep = !sources
            .iter()
            .find(|s| s.rel == f.file)
            .is_some_and(|s| s.suppressed(f.line, f.code));
        if !keep {
            suppressed += 1;
        }
        keep
    });
    findings.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Report { files_scanned: sources.len(), findings, suppressed }
}

/// Walk upward from `start` to find the workspace root: the first ancestor
/// containing both `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_is_applied_and_counted() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    // ent-lint: allow(E001)\n    o.unwrap()\n}\n";
        let file = SourceFile::new("crates/wire/src/x.rs".into(), "wire".into(), false, src.as_bytes().to_vec());
        let report = lint_sources(vec![file], &LintConfig::default());
        assert!(report.findings.iter().all(|f| f.code != Code::E001));
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn findings_sorted_by_location() {
        let src = "fn f(o: Option<u8>, b: &[u8], i: usize) -> u8 {\n    o.unwrap() + b[i]\n}\nfn g(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n";
        let file = SourceFile::new("crates/wire/src/x.rs".into(), "wire".into(), false, src.as_bytes().to_vec());
        let report = lint_sources(vec![file], &LintConfig::default());
        let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert_eq!(report.count(Code::E001), 3);
    }
}
