//! The `ent-lint` binary: lint the workspace, print findings, exit
//! non-zero when the tree is not clean.
//!
//! ```text
//! ent-lint [--json] [--root DIR] [--list]
//! ```
//!
//! * `--json` — emit the machine-readable report on stdout
//! * `--root DIR` — lint the workspace rooted at DIR (default: walk up
//!   from the current directory)
//! * `--list` — print the lint codes and their one-line descriptions
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use ent_lint::{find_workspace_root, lint_workspace, report::ALL_CODES, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ent-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ent-lint [--json] [--root DIR] [--list]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ent-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        for code in ALL_CODES {
            println!("{code}  {}", code.title());
        }
        return ExitCode::SUCCESS;
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("ent-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ent-lint: no workspace root (Cargo.toml + crates/) above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_workspace(&root, &LintConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ent-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "ent-lint: {} finding(s), {} suppressed, {} file(s) scanned",
            report.findings.len(),
            report.suppressed,
            report.files_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
