//! Findings, lint-code metadata and report rendering (human + JSON).

use std::fmt;

/// The coded lints `ent-lint` enforces. See `DESIGN.md` for the rationale
/// behind each invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Panic surface in ingest crates: `unwrap`/`expect`/`panic!`/
    /// `unreachable!`/`todo!`/`unimplemented!` or computed slice indexing in
    /// non-test code of `wire`/`pcap`/`proto`/`flow`/`core`.
    E001,
    /// Unchecked offset arithmetic or truncating `as` casts on
    /// length-derived values inside parser hot paths of `wire`/`pcap`/
    /// `proto`.
    E002,
    /// Crate-hygiene totality: every crate root must carry
    /// `#![forbid(unsafe_code)]`, `#![deny(missing_docs)]` and the
    /// `cfg_attr(not(test))` unwrap/expect gate.
    E003,
    /// Protocol-registry totality: every analyzer module under
    /// `crates/proto/src/` must be listed in `registry.rs`'s
    /// `ANALYZER_MODULES`, and every listed module must exist.
    E004,
    /// Paper-artifact coverage: every `Table N`/`Figure N` claimed in
    /// `crates/core/src/analyses` must be referenced from test code.
    E005,
    /// Nondeterminism hazard in analysis code: iteration over a std
    /// `HashMap`/`HashSet` on a path that reaches report/signature/
    /// finalize sinks without an intervening sort or order-insensitive
    /// reduction; wall-clock/thread-id/env reads; float accumulation over
    /// unordered-map iteration.
    E006,
    /// Shared-state discipline for the sharded pipeline: `static mut`
    /// items, non-`Sync` interior mutability (`RefCell`/`Cell`/`Rc`) in
    /// worker-side crates, or lock acquisition inside per-packet hot
    /// functions.
    E007,
    /// Error-taxonomy totality: public fallible functions in ingest crates
    /// must return a typed taxonomy error (no `Result<_, String>`, no
    /// `bool`/`Option` smuggling on fallible-verb names, no truncating
    /// `as` casts inside `Err(..)` construction).
    E008,
    /// Checkpoint/bench schema hygiene: every `Checkpoint` payload field
    /// and every key emitted by the `ent-bench-*` JSON writers must be
    /// referenced from test code (round-trip or obs-check coverage).
    E009,
}

/// All codes, in order.
pub const ALL_CODES: [Code; 9] = [
    Code::E001,
    Code::E002,
    Code::E003,
    Code::E004,
    Code::E005,
    Code::E006,
    Code::E007,
    Code::E008,
    Code::E009,
];

/// Version tag stamped into `ent-lint --json` output. Bumped whenever the
/// set of codes or the JSON shape changes, so downstream diffing tools can
/// refuse mismatched reports instead of mis-parsing them.
pub const JSON_SCHEMA: &str = "ent-lint/2";

impl Code {
    /// The code as printed in findings and written in suppressions.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::E007 => "E007",
            Code::E008 => "E008",
            Code::E009 => "E009",
        }
    }

    /// Short human title.
    pub fn title(self) -> &'static str {
        match self {
            Code::E001 => "panic surface in ingest crate",
            Code::E002 => "unchecked wire-length arithmetic in parser hot path",
            Code::E003 => "crate hygiene attributes missing",
            Code::E004 => "protocol analyzer not registered",
            Code::E005 => "paper artifact without test reference",
            Code::E006 => "nondeterminism hazard in analysis path",
            Code::E007 => "shared-state hazard for sharded workers",
            Code::E008 => "untyped error on public fallible function",
            Code::E009 => "checkpoint/bench schema field without test coverage",
        }
    }

    /// Parse a code written in a suppression comment.
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Finding severity. Every tier-1 lint reports at `Error`; the level is
/// carried separately so future advisory lints can ride the same report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or explicitly suppressed; fails the build gate.
    Error,
    /// Advisory only; never fails the gate.
    Warning,
}

impl Severity {
    /// Lower-case name used in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding, anchored to a workspace-relative `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub code: Code,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}]: {}",
            self.file, self.line, self.severity.as_str(), self.code, self.message
        )
    }
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by inline `ent-lint: allow(..)` comments.
    pub suppressed: usize,
}

impl Report {
    /// True when no error-severity finding survived suppression.
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Count of findings for one code.
    pub fn count(&self, code: Code) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }

    /// Render the machine-readable JSON report (stable key order, no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 128);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(JSON_SCHEMA);
        out.push_str("\",\n  \"files_scanned\": ");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\n  \"suppressed\": ");
        out.push_str(&self.suppressed.to_string());
        out.push_str(",\n  \"counts\": {");
        for (i, code) in ALL_CODES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(code.as_str());
            out.push_str("\": ");
            out.push_str(&self.count(*code).to_string());
        }
        out.push_str("},\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"code\": \"");
            out.push_str(f.code.as_str());
            out.push_str("\", \"severity\": \"");
            out.push_str(f.severity.as_str());
            out.push_str("\", \"file\": \"");
            json_escape(&mut out, &f.file);
            out.push_str("\", \"line\": ");
            out.push_str(&f.line.to_string());
            out.push_str(", \"message\": \"");
            json_escape(&mut out, &f.message);
            out.push_str("\"}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("E999"), None);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(Finding {
            code: Code::E001,
            severity: Severity::Error,
            file: "crates/wire/src/lib.rs".into(),
            line: 7,
            message: "call to `unwrap()` with \"quotes\"".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"E001\": 1"));
        assert!(j.contains("\"E005\": 0"));
    }

    #[test]
    fn display_format_is_clickable() {
        let f = Finding {
            code: Code::E003,
            severity: Severity::Error,
            file: "crates/gen/src/lib.rs".into(),
            line: 1,
            message: "missing gate".into(),
        };
        assert_eq!(f.to_string(), "crates/gen/src/lib.rs:1: error [E003]: missing gate");
    }

    #[test]
    fn clean_report() {
        let r = Report::default();
        assert!(r.is_clean());
        assert_eq!(r.count(Code::E002), 0);
    }
}
