//! Per-file analysis context: token stream plus the derived maps every
//! check consults — test regions, inline suppressions and enclosing-`fn`
//! spans.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Code;
use std::collections::HashMap;

/// A lexed source file with its derived lint context.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Name of the owning crate (`wire`, `pcap`, …), or the top-level
    /// member name (`tests`, `examples`) outside `crates/`.
    pub crate_name: String,
    /// Whole file is test context (integration tests, benches, the
    /// top-level `tests` member).
    pub is_test_file: bool,
    /// Raw bytes.
    pub bytes: Vec<u8>,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    test_lines: Vec<bool>,
    suppress: HashMap<u32, Vec<Code>>,
    fn_spans: Vec<FnSpan>,
    line_starts: Vec<usize>,
}

/// Span of one `fn` item body, used to scope hot-path checks.
#[derive(Debug, Clone)]
struct FnSpan {
    start_line: u32,
    end_line: u32,
    name: String,
}

impl SourceFile {
    /// Lex and analyze one file.
    pub fn new(rel: String, crate_name: String, is_test_file: bool, bytes: Vec<u8>) -> SourceFile {
        let toks = lex(&bytes);
        let mut line_starts = vec![0usize];
        for (i, b) in bytes.iter().enumerate() {
            if *b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut sf = SourceFile {
            rel,
            crate_name,
            is_test_file,
            bytes,
            toks,
            test_lines: Vec::new(),
            suppress: HashMap::new(),
            fn_spans: Vec::new(),
            line_starts,
        };
        sf.compute_test_lines();
        sf.compute_suppressions();
        sf.compute_fn_spans();
        sf
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Raw text of a 1-based line (without the newline).
    pub fn line_text(&self, line: u32) -> std::borrow::Cow<'_, str> {
        let idx = (line as usize).saturating_sub(1);
        let start = self.line_starts.get(idx).copied().unwrap_or(self.bytes.len());
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|e| e.saturating_sub(1))
            .unwrap_or(self.bytes.len());
        String::from_utf8_lossy(&self.bytes[start.min(end)..end])
    }

    /// Is this 1-based line inside a `#[cfg(test)]`/`#[test]` region (or is
    /// the whole file test context)?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file || self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Like [`is_test_line`](Self::is_test_line), but ignores the
    /// whole-file flag: true only inside an attribute-marked
    /// `#[test]`/`#[cfg(test)]` region. The harness sweep (E001-lite over
    /// the `tests`/`bench` crates) uses this so helper code *between* test
    /// fns is still checked even though the whole file is test context.
    pub fn is_attr_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Is `code` suppressed at `line` by an inline
    /// `// ent-lint: allow(CODE)` comment (same line or the line above)?
    pub fn suppressed(&self, line: u32, code: Code) -> bool {
        self.suppress.get(&line).is_some_and(|v| v.contains(&code))
    }

    /// Name of the innermost `fn` whose body contains `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fn_spans
            .iter()
            .filter(|s| s.start_line <= line && line <= s.end_line)
            .max_by_key(|s| s.start_line)
            .map(|s| s.name.as_str())
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> std::borrow::Cow<'_, str> {
        self.toks[i].text(&self.bytes)
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_sig(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.toks[j].kind != TokKind::Comment)
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_sig(&self, i: usize) -> Option<usize> {
        (i + 1..self.toks.len()).find(|&j| self.toks[j].kind != TokKind::Comment)
    }

    /// Index of the bracket token that closes the opener at `open`
    /// (`(`/`)`, `[`/`]` or `{`/`}`), ignoring comments.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.toks[open].kind {
            TokKind::Punct('(') => ('(', ')'),
            TokKind::Punct('[') => ('[', ']'),
            TokKind::Punct('{') => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i64;
        for j in open..self.toks.len() {
            match self.toks[j].kind {
                TokKind::Punct(p) if p == o => depth += 1,
                TokKind::Punct(p) if p == c => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    fn is(&self, i: usize, kind: TokKind) -> bool {
        self.toks.get(i).map(|t| t.kind) == Some(kind)
    }

    fn ident_is(&self, i: usize, s: &str) -> bool {
        self.is(i, TokKind::Ident) && self.text(i) == s
    }

    /// Mark lines covered by `#[cfg(test)]`/`#[test]` item bodies.
    fn compute_test_lines(&mut self) {
        let mut marks: Vec<(u32, u32)> = Vec::new();
        let mut i = 0usize;
        while i < self.toks.len() {
            if self.is(i, TokKind::Punct('#')) {
                // Outer attribute `#[...]` (inner `#![...]` never marks a
                // region here; file-level cfg(test) does not occur in this
                // workspace and whole-file test context comes from paths).
                let open = if self.is(i + 1, TokKind::Punct('[')) { i + 1 } else { usize::MAX };
                if open == usize::MAX {
                    i += 1;
                    continue;
                }
                let Some(close) = self.matching_close(open) else {
                    break;
                };
                if self.attr_is_test(open + 1, close) {
                    if let Some((a, b)) = self.item_body_after(close + 1) {
                        marks.push((a, b));
                    }
                }
                i = close + 1;
            } else {
                i += 1;
            }
        }
        let mut lines = vec![false; self.line_count() as usize + 2];
        for (a, b) in marks {
            for l in a..=b.min(self.line_count()) {
                if let Some(slot) = lines.get_mut(l as usize) {
                    *slot = true;
                }
            }
        }
        self.test_lines = lines;
    }

    /// Do attribute tokens in `(from..to)` mark a test-only item:
    /// `#[test]`, or `#[cfg(...)]` whose condition mentions `test` outside
    /// a `not(...)`?
    fn attr_is_test(&self, from: usize, to: usize) -> bool {
        let sig: Vec<usize> = (from..to).filter(|&j| self.toks[j].kind != TokKind::Comment).collect();
        if sig.len() == 1 && self.ident_is(sig[0], "test") {
            return true;
        }
        if sig.first().is_some_and(|&j| self.ident_is(j, "cfg")) {
            for (k, &j) in sig.iter().enumerate() {
                if self.ident_is(j, "test") {
                    let negated = k >= 2
                        && self.is(sig[k - 1], TokKind::Punct('('))
                        && self.ident_is(sig[k - 2], "not");
                    if !negated {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Starting at token `i` (just past an attribute), skip any further
    /// attributes, then return the line span of the item body `{ … }`, or
    /// `None` for braceless items (`;`-terminated).
    fn item_body_after(&self, mut i: usize) -> Option<(u32, u32)> {
        // Skip stacked attributes and doc comments.
        loop {
            while self.is(i, TokKind::Comment) {
                i += 1;
            }
            if self.is(i, TokKind::Punct('#')) && self.is(i + 1, TokKind::Punct('[')) {
                i = self.matching_close(i + 1)? + 1;
            } else {
                break;
            }
        }
        // Find the body `{` (or `;`) at bracket depth 0.
        let mut depth = 0i64;
        while i < self.toks.len() {
            match self.toks[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => return None,
                TokKind::Punct('{') if depth == 0 => {
                    let close = self.matching_close(i)?;
                    return Some((self.toks[i].line, self.toks[close].line));
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Collect `// ent-lint: allow(CODE, …)` suppressions. A suppression
    /// applies to its own line and the line below it.
    fn compute_suppressions(&mut self) {
        let mut map: HashMap<u32, Vec<Code>> = HashMap::new();
        for t in &self.toks {
            if t.kind != TokKind::Comment {
                continue;
            }
            let text = t.text(&self.bytes);
            let Some(pos) = text.find("ent-lint:") else { continue };
            let rest = &text[pos + "ent-lint:".len()..];
            let Some(open) = rest.find("allow(") else { continue };
            let args = &rest[open + "allow(".len()..];
            let Some(end) = args.find(')') else { continue };
            for part in args[..end].split(',') {
                if let Some(code) = Code::parse(part.trim()) {
                    map.entry(t.line).or_default().push(code);
                    map.entry(t.line + 1).or_default().push(code);
                }
            }
        }
        self.suppress = map;
    }

    /// Record the body span of every named `fn`.
    fn compute_fn_spans(&mut self) {
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < self.toks.len() {
            if self.ident_is(i, "fn") {
                if let Some(ni) = self.next_sig(i) {
                    if self.is(ni, TokKind::Ident) {
                        let name = self.text(ni).into_owned();
                        if let Some((a, b)) = self.item_body_after(ni + 1) {
                            spans.push(FnSpan { start_line: a.min(self.toks[i].line), end_line: b, name });
                        }
                    }
                }
            }
            i += 1;
        }
        self.fn_spans = spans;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), false, src.as_bytes().to_vec())
    }

    #[test]
    fn cfg_test_mod_region() {
        let s = sf("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn test_fn_region_with_stacked_attrs() {
        let s = sf("#[test]\n#[ignore]\nfn t() {\n    body();\n}\nfn real() {}\n");
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let s = sf("#[cfg(not(test))]\nfn gate() {\n    body();\n}\n");
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn cfg_all_test_is_a_test_region() {
        let s = sf("#[cfg(all(test, feature = \"x\"))]\nmod m {\n    fn b() {}\n}\n");
        assert!(s.is_test_line(3));
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let s = sf("// ent-lint: allow(E001, E002)\nlet x = v[i];\nlet y = v[j];\n");
        assert!(s.suppressed(2, Code::E001));
        assert!(s.suppressed(2, Code::E002));
        assert!(!s.suppressed(3, Code::E001));
        // Trailing form.
        let s2 = sf("let x = v[i]; // ent-lint: allow(E001)\n");
        assert!(s2.suppressed(1, Code::E001));
    }

    #[test]
    fn enclosing_fn_innermost_wins() {
        let s = sf("fn outer_parse() {\n    fn helper() {\n        x();\n    }\n    y();\n}\n");
        assert_eq!(s.enclosing_fn(3), Some("helper"));
        assert_eq!(s.enclosing_fn(5), Some("outer_parse"));
        assert_eq!(s.enclosing_fn(7), None);
    }

    #[test]
    fn fn_with_array_param_finds_body() {
        let s = sf("fn f(a: [u8; 4]) -> u8 {\n    a_body();\n}\n");
        assert_eq!(s.enclosing_fn(2), Some("f"));
    }

    #[test]
    fn line_text_roundtrip() {
        let s = sf("one\ntwo\nthree");
        assert_eq!(s.line_text(2), "two");
        assert_eq!(s.line_text(3), "three");
    }
}
