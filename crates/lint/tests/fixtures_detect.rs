//! Every seeded violation in `tests/fixtures/ws` must be detected, with
//! the expected counts per code, and the one inline suppression honored.

// Test helpers may abort on setup failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ent_lint::{lint_workspace, Code, LintConfig, Report};
use std::path::Path;

fn fixture_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    lint_workspace(&root, &LintConfig::default()).expect("fixture tree readable")
}

#[test]
fn every_code_is_detected() {
    let r = fixture_report();
    assert_eq!(
        r.count(Code::E001),
        4,
        "unwrap, panic!, computed index, harness bare unwrap:\n{:#?}",
        r.findings
    );
    assert_eq!(
        r.count(Code::E002),
        6,
        "off + 4, len() as u16, hot-map HashMap::new, hot-alloc Vec::new/vec!/to_vec:\n{:#?}",
        r.findings
    );
    assert_eq!(r.count(Code::E003), 2, "wire root misses two attrs:\n{:#?}", r.findings);
    assert_eq!(r.count(Code::E004), 2, "ghost listed, http unlisted:\n{:#?}", r.findings);
    assert_eq!(r.count(Code::E005), 1, "Figure 77 has no test reference:\n{:#?}", r.findings);
    assert_eq!(
        r.count(Code::E006),
        3,
        "sink-reachable map iter, Instant::now, float accumulation:\n{:#?}",
        r.findings
    );
    assert_eq!(
        r.count(Code::E007),
        3,
        "static mut, RefCell field, hot-path lock:\n{:#?}",
        r.findings
    );
    assert_eq!(
        r.count(Code::E008),
        3,
        "String error, Option smuggling, Err truncation:\n{:#?}",
        r.findings
    );
    assert_eq!(
        r.count(Code::E009),
        2,
        "ghost checkpoint field, ghost bench key:\n{:#?}",
        r.findings
    );
}

#[test]
fn findings_anchor_to_the_seeded_lines() {
    let r = fixture_report();
    let has = |code: Code, file: &str, line: u32| {
        r.findings
            .iter()
            .any(|f| f.code == code && f.file == file && f.line == line)
    };
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 8), "unwrap site");
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 13), "panic! site");
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 18), "computed index site");
    assert!(has(Code::E002, "crates/wire/src/parse.rs", 6), "off + 4 site");
    assert!(has(Code::E002, "crates/wire/src/parse.rs", 7), "len() as u16 site");
    assert!(has(Code::E002, "crates/flow/src/table.rs", 10), "hot-map HashMap::new site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 7), "hot-alloc Vec::new site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 14), "hot-alloc vec! site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 19), "hot-alloc .to_vec site");
    assert!(has(Code::E005, "crates/core/src/analyses/foo.rs", 1), "Figure 77 claim");
    assert!(has(Code::E006, "crates/core/src/report.rs", 10), "sink-reachable map iter site");
    assert!(has(Code::E006, "crates/core/src/report.rs", 17), "Instant::now site");
    assert!(has(Code::E006, "crates/core/src/report.rs", 24), "float accumulation site");
    assert!(has(Code::E007, "crates/flow/src/shard.rs", 9), "static mut site");
    assert!(has(Code::E007, "crates/flow/src/shard.rs", 15), "RefCell field site");
    assert!(has(Code::E007, "crates/flow/src/shard.rs", 20), "hot-path lock site");
    assert!(has(Code::E008, "crates/pcap/src/load.rs", 6), "String error site");
    assert!(has(Code::E008, "crates/pcap/src/load.rs", 15), "Option smuggling site");
    assert!(has(Code::E008, "crates/pcap/src/load.rs", 22), "Err truncation site");
    assert!(has(Code::E009, "crates/core/src/checkpoint.rs", 9), "ghost checkpoint field");
    assert!(has(Code::E009, "crates/core/src/metrics.rs", 21), "ghost bench key");
    assert!(has(Code::E001, "tests/src/helpers.rs", 7), "harness bare unwrap site");
}

#[test]
fn suppression_is_honored() {
    let r = fixture_report();
    assert_eq!(r.suppressed, 1, "exactly the at_guarded index is silenced");
    // The suppressed site (lib.rs:25) must not surface as a finding.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/wire/src/lib.rs" && f.line == 25),
        "suppressed finding leaked:\n{:#?}",
        r.findings
    );
}

#[test]
fn cold_paths_and_checked_forms_stay_quiet() {
    let r = fixture_report();
    // parse_ok (checked_add) and helper (cold path) must not be flagged.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/wire/src/parse.rs" && f.line > 8),
        "false positive past the seeded lines:\n{:#?}",
        r.findings
    );
    // The clean proto root and the registered dns module are quiet.
    assert!(!r.findings.iter().any(|f| f.file == "crates/proto/src/lib.rs"));
    assert!(!r.findings.iter().any(|f| f.message.contains("`dns`")));
    // The hasher-explicit map construction in the hot-map fixture is clean.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/flow/src/table.rs" && f.line != 10),
        "hot-map rule flagged a hasher-explicit construction:\n{:#?}",
        r.findings
    );
    // The reused-buffer and pre-sized forms in the hot-alloc fixture are
    // clean — only the three per-call allocation sites surface.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/gen/src/synth.rs" && ![7, 14, 19].contains(&f.line)),
        "hot-alloc rule flagged a reused-buffer form:\n{:#?}",
        r.findings
    );
    // E006 escapes: sorted, sum-reduced and hasher-explicit forms pass.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/core/src/report.rs" && ![10, 17, 24].contains(&f.line)),
        "E006 flagged a clean escape form:\n{:#?}",
        r.findings
    );
    // E007: the cold-path lock in `snapshot` is out of scope.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/flow/src/shard.rs" && ![9, 15, 20].contains(&f.line)),
        "E007 flagged the cold-path lock:\n{:#?}",
        r.findings
    );
    // E008: the taxonomy-typed fn and the `has_payload` predicate pass.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/pcap/src/load.rs" && ![6, 15, 22].contains(&f.line)),
        "E008 flagged a clean form:\n{:#?}",
        r.findings
    );
    // E009: the covered field and keys stay quiet; only the ghosts fire.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.code == Code::E009 && f.message.contains("epoch_index")),
        "E009 flagged a covered checkpoint field:\n{:#?}",
        r.findings
    );
    assert!(
        !r.findings.iter().any(|f| {
            f.code == Code::E009
                && (f.message.contains("`schema`") || f.message.contains("`packets`"))
        }),
        "E009 flagged a covered bench key:\n{:#?}",
        r.findings
    );
    // Harness sweep: unwrap inside the #[test] region is exempt.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "tests/src/helpers.rs" && f.line != 7),
        "harness sweep flagged exempt test-region code:\n{:#?}",
        r.findings
    );
}

#[test]
fn json_report_carries_every_code_and_schema() {
    let json = fixture_report().to_json();
    for code in ["E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E009"] {
        assert!(json.contains(code), "JSON output missing {code}:\n{json}");
    }
    // The version tag is the first key, so diff tools can gate on it.
    assert!(
        json.starts_with("{\n  \"schema\": \"ent-lint/2\","),
        "schema tag missing or not first:\n{json}"
    );
}

#[test]
fn json_report_is_deterministic_and_sorted() {
    let a = fixture_report().to_json();
    let b = fixture_report().to_json();
    assert_eq!(a, b, "two runs over the same tree must emit identical JSON");
    // Findings are sorted by (file, line, code): the serialized anchors
    // must already be in order, so reports diff cleanly run-to-run.
    let r = fixture_report();
    let keys: Vec<(String, u32, String)> = r
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.code.to_string()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings not in stable (file, line, code) order");
}
