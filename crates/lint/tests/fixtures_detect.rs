//! Every seeded violation in `tests/fixtures/ws` must be detected, with
//! the expected counts per code, and the one inline suppression honored.

// Test helpers may abort on setup failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ent_lint::{lint_workspace, Code, LintConfig, Report};
use std::path::Path;

fn fixture_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    lint_workspace(&root, &LintConfig::default()).expect("fixture tree readable")
}

#[test]
fn every_code_is_detected() {
    let r = fixture_report();
    assert_eq!(r.count(Code::E001), 3, "unwrap, panic!, computed index:\n{:#?}", r.findings);
    assert_eq!(
        r.count(Code::E002),
        6,
        "off + 4, len() as u16, hot-map HashMap::new, hot-alloc Vec::new/vec!/to_vec:\n{:#?}",
        r.findings
    );
    assert_eq!(r.count(Code::E003), 2, "wire root misses two attrs:\n{:#?}", r.findings);
    assert_eq!(r.count(Code::E004), 2, "ghost listed, http unlisted:\n{:#?}", r.findings);
    assert_eq!(r.count(Code::E005), 1, "Figure 77 has no test reference:\n{:#?}", r.findings);
}

#[test]
fn findings_anchor_to_the_seeded_lines() {
    let r = fixture_report();
    let has = |code: Code, file: &str, line: u32| {
        r.findings
            .iter()
            .any(|f| f.code == code && f.file == file && f.line == line)
    };
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 8), "unwrap site");
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 13), "panic! site");
    assert!(has(Code::E001, "crates/wire/src/lib.rs", 18), "computed index site");
    assert!(has(Code::E002, "crates/wire/src/parse.rs", 6), "off + 4 site");
    assert!(has(Code::E002, "crates/wire/src/parse.rs", 7), "len() as u16 site");
    assert!(has(Code::E002, "crates/flow/src/table.rs", 10), "hot-map HashMap::new site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 7), "hot-alloc Vec::new site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 14), "hot-alloc vec! site");
    assert!(has(Code::E002, "crates/gen/src/synth.rs", 19), "hot-alloc .to_vec site");
    assert!(has(Code::E005, "crates/core/src/analyses/foo.rs", 1), "Figure 77 claim");
}

#[test]
fn suppression_is_honored() {
    let r = fixture_report();
    assert_eq!(r.suppressed, 1, "exactly the at_guarded index is silenced");
    // The suppressed site (lib.rs:25) must not surface as a finding.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/wire/src/lib.rs" && f.line == 25),
        "suppressed finding leaked:\n{:#?}",
        r.findings
    );
}

#[test]
fn cold_paths_and_checked_forms_stay_quiet() {
    let r = fixture_report();
    // parse_ok (checked_add) and helper (cold path) must not be flagged.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/wire/src/parse.rs" && f.line > 8),
        "false positive past the seeded lines:\n{:#?}",
        r.findings
    );
    // The clean proto root and the registered dns module are quiet.
    assert!(!r.findings.iter().any(|f| f.file == "crates/proto/src/lib.rs"));
    assert!(!r.findings.iter().any(|f| f.message.contains("`dns`")));
    // The hasher-explicit map construction in the hot-map fixture is clean.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/flow/src/table.rs" && f.line != 10),
        "hot-map rule flagged a hasher-explicit construction:\n{:#?}",
        r.findings
    );
    // The reused-buffer and pre-sized forms in the hot-alloc fixture are
    // clean — only the three per-call allocation sites surface.
    assert!(
        !r.findings
            .iter()
            .any(|f| f.file == "crates/gen/src/synth.rs" && ![7, 14, 19].contains(&f.line)),
        "hot-alloc rule flagged a reused-buffer form:\n{:#?}",
        r.findings
    );
}

#[test]
fn json_report_carries_every_code() {
    let json = fixture_report().to_json();
    for code in ["E001", "E002", "E003", "E004", "E005"] {
        assert!(json.contains(code), "JSON output missing {code}:\n{json}");
    }
}
