//! Tier-1 gate: `ent-lint` run self-hosted over this workspace must report
//! zero findings. Any new panic surface, unchecked parser arithmetic,
//! missing hygiene attribute, unregistered analyzer, untested paper
//! artifact, nondeterminism hazard, shared-state violation, untyped
//! public error or uncovered schema key fails `cargo test` — not just
//! `scripts/check.sh`.

use ent_lint::{find_workspace_root, lint_workspace, walk, LintConfig};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace readable");
    assert!(report.files_scanned > 50, "walker saw too few files: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "ent-lint found {} issue(s) in the workspace:\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}

/// The E001-lite harness sweep is only as good as the walk: if the walker
/// ever stops descending into the `tests` member or the `bench` crate,
/// the zero-findings assertion above goes blind to them silently. Pin the
/// coverage here.
#[test]
fn harness_crates_are_walked() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let entries = walk::walk_workspace(&root).expect("workspace readable");
    for needed in ["tests/", "crates/bench/"] {
        assert!(
            entries.iter().any(|e| e.rel.starts_with(needed)),
            "walker skipped the {needed} harness crate entirely"
        );
    }
    // Fixture trees must never leak into the self-hosted walk: they hold
    // seeded violations by design.
    assert!(
        !entries.iter().any(|e| e.rel.contains("fixtures/")),
        "seeded-violation fixtures leaked into the workspace walk"
    );
}
