//! Tier-1 gate: `ent-lint` run self-hosted over this workspace must report
//! zero findings. Any new panic surface, unchecked parser arithmetic,
//! missing hygiene attribute, unregistered analyzer or untested paper
//! artifact fails `cargo test` — not just `scripts/check.sh`.

use ent_lint::{find_workspace_root, lint_workspace, LintConfig};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace readable");
    assert!(report.files_scanned > 50, "walker saw too few files: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "ent-lint found {} issue(s) in the workspace:\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}
