//! Property tests for the hand-rolled lexer: adversarial token soups.
//!
//! The lint checks trust three lexer invariants absolutely — a violation of
//! any of them turns into phantom findings (or a panic) somewhere in
//! E001–E009:
//!
//! 1. **Spans are sliceable**: every token satisfies
//!    `start < end <= src.len()` and tokens are non-overlapping, in order.
//! 2. **Lines are exact**: `tok.line` equals one plus the number of `\n`
//!    bytes before `tok.start` — suppressions and findings anchor by line.
//! 3. **Literals hide their contents**: code-looking words inside complete
//!    string/char/comment fragments never surface as `Ident` tokens.
//!
//! The soups are built from a fragment pool (raw strings with 0–2 hashes,
//! nested block comments, escapes, unterminated tails, byte literals,
//! lifetimes) concatenated in seeded-random order, so every run is
//! reproducible.

// Test-only: assertions may abort.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ent_lint::lexer::{lex, TokKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Fragments that are fully self-delimited: concatenating them in any
/// order cannot change where any literal starts or ends. The word
/// `unwrap` appears only inside literals/comments here, never as code.
const SEALED: &[&str] = &[
    "ident_a ",
    "x.get(i) ",
    "\"plain unwrap string\" ",
    "\"esc \\\" unwrap \\\\ more\" ",
    "\"multi\nline unwrap\" ",
    "r\"raw unwrap body\" ",
    "r#\"raw # unwrap \" quote\"# ",
    "r##\"deeper \"# unwrap \"## ",
    "b\"byte unwrap \\xFF\" ",
    "b'q' ",
    "'x' ",
    "'\\n' ",
    "'\\'' ",
    "'static ",
    "// line unwrap comment\n",
    "/* block unwrap */ ",
    "/* outer /* inner unwrap */ done */ ",
    "1.5e3 ",
    "0xFF_u32 ",
    "#![attr] ",
    "{ ( [ ] ) } ",
    "+ - * / = ; , < > ",
    "\n\n",
];

/// Fragments that may swallow whatever follows (unterminated literals,
/// trailing escapes). Used only for the bounds/ordering invariants, where
/// "everything after is one big literal" is acceptable behavior.
const RAGGED: &[&str] = &[
    "\"open string ",
    "r#\"open raw ",
    "/* open comment ",
    "\"trailing escape \\",
    "'\\",
    "r###\"very raw ",
    "b\"open bytes ",
];

fn soup(rng: &mut StdRng, pool: &[&str], max_frags: usize) -> String {
    let count = rng.random_range(1..max_frags);
    let mut s = String::new();
    for _ in 0..count {
        s.push_str(pool[rng.random_range(0..pool.len())]);
    }
    s
}

/// Invariants 1 and 2 on one source: spans in bounds, ordered,
/// non-overlapping; lines exact; text extraction total; lexing
/// deterministic.
fn check_invariants(src: &str) {
    let bytes = src.as_bytes();
    let toks = lex(bytes);
    let mut prev_end = 0usize;
    for t in &toks {
        assert!(t.start < t.end, "empty span {}..{} in {src:?}", t.start, t.end);
        assert!(t.end <= bytes.len(), "span {}..{} beyond len {} in {src:?}", t.start, t.end, bytes.len());
        assert!(t.start >= prev_end, "overlapping tokens at {} in {src:?}", t.start);
        prev_end = t.end;
        let expect_line = 1 + bytes[..t.start].iter().filter(|&&b| b == b'\n').count() as u32;
        assert_eq!(t.line, expect_line, "line drift for {:?} at {}..{} in {src:?}", t.kind, t.start, t.end);
        let _ = t.text(bytes); // total
    }
    let again = lex(bytes);
    assert_eq!(toks.len(), again.len(), "non-deterministic lex of {src:?}");
    for (a, b) in toks.iter().zip(again.iter()) {
        assert!(a.kind == b.kind && a.start == b.start && a.end == b.end && a.line == b.line);
    }
}

#[test]
fn sealed_soups_hold_all_invariants_and_hide_literals() {
    let mut rng = StdRng::seed_from_u64(0x1e4e5);
    for _ in 0..4000 {
        let src = soup(&mut rng, SEALED, 40);
        check_invariants(&src);
        // Invariant 3: `unwrap` exists only inside literals/comments in the
        // sealed pool, so it must never lex as an identifier.
        for t in lex(src.as_bytes()) {
            if t.kind == TokKind::Ident {
                assert_ne!(
                    t.text(src.as_bytes()),
                    "unwrap",
                    "phantom `unwrap` ident leaked out of a literal in {src:?}"
                );
            }
        }
    }
}

#[test]
fn ragged_soups_stay_in_bounds() {
    let mut rng = StdRng::seed_from_u64(0xbad5eed);
    for _ in 0..4000 {
        // Sealed prefix, ragged middle, arbitrary tail: the tail may get
        // swallowed by the ragged fragment, but spans/lines must stay exact.
        let mut src = soup(&mut rng, SEALED, 10);
        src.push_str(RAGGED[rng.random_range(0..RAGGED.len())]);
        src.push_str(&soup(&mut rng, SEALED, 10));
        if rng.random_bool(0.3) {
            src.push_str(RAGGED[rng.random_range(0..RAGGED.len())]);
        }
        check_invariants(&src);
    }
}

#[test]
fn byte_level_fuzz_never_panics() {
    // Pure byte noise biased toward the lexer's special characters.
    let mut rng = StdRng::seed_from_u64(2005);
    let alphabet: &[u8] = b"\"'#rb/*\\\n aZ09_!\xFF";
    for _ in 0..2000 {
        let len = rng.random_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect();
        let toks = lex(&bytes);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(t.start < t.end && t.end <= bytes.len());
            assert!(t.start >= prev_end);
            prev_end = t.end;
            let _ = t.text(&bytes);
        }
    }
}
