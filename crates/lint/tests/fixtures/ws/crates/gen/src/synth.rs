//! Fixture for the E002 hot-allocation rule: this path is listed in
//! `LintConfig::hot_alloc_files`, so per-call `Vec` allocation here must
//! be flagged while the reused-buffer forms pass.

/// Violation: a fresh growable Vec per emitted frame.
pub fn emit_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    frame.push(0u8);
    frame
}

/// Violation: `vec!` macro allocates per call too.
pub fn emit_padding(n: usize) -> Vec<u8> {
    vec![0u8; n]
}

/// Violation: `.to_vec()` copies the slice into a fresh allocation.
pub fn emit_copy(payload: &[u8]) -> Vec<u8> {
    payload.to_vec()
}

/// Clean: writing through a caller-owned reused buffer is the accepted
/// form — the buffer's capacity survives across calls.
pub fn emit_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.clear();
    buf.extend_from_slice(payload);
}

/// Clean: a one-time pre-sized setup buffer is out of scope; it is the
/// empty per-call Vec that churns, not sized construction.
pub fn setup_scratch(cap: usize) -> Vec<u8> {
    Vec::with_capacity(cap)
}
