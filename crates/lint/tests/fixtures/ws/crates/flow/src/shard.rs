//! Seeded E007 violations: a mutable static, non-`Sync` interior
//! mutability in a worker-side struct, and lock acquisition on the
//! per-packet hot path — plus the cold-path form that must stay quiet.

use std::cell::RefCell;
use std::sync::Mutex;

/// Seeded E007: unsynchronized global counter.
static mut PACKET_COUNT: u64 = 0;

/// Worker-side shard state.
pub struct ShardState {
    /// Seeded E007: `RefCell` is not `Sync`, so this cannot be shared
    /// across shard workers.
    cache: RefCell<u64>,
}

/// Seeded E007: per-packet hot fn (`ingest`) taking a lock every call.
pub fn ingest_packet(table: &Mutex<u64>) {
    let _guard = table.lock();
}

/// Clean: the same lock in a cold snapshot fn is out of scope.
pub fn snapshot(table: &Mutex<u64>) {
    let _guard = table.lock();
}
