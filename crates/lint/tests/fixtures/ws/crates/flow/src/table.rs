//! Fixture for the E002 hot-map rule: this path is listed in
//! `LintConfig::hot_map_files`, so constructing a std-SipHash `HashMap`
//! here must be flagged while the hasher-explicit form passes.

use std::collections::HashMap;
use std::hash::RandomState;

/// Violation: defaults to SipHash and an empty table on the packet path.
pub fn open_table() -> HashMap<u32, u32> {
    HashMap::new()
}

/// Clean: hasher chosen explicitly, capacity pre-sized.
pub fn open_table_sized() -> HashMap<u32, u32, RandomState> {
    HashMap::with_capacity_and_hasher(64, RandomState::new())
}
