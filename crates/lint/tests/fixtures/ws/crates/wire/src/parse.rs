//! Seeded E002 violations: unchecked offset arithmetic and a truncating
//! cast of a length-derived value, both inside a parser hot-path function.

/// Hot path (name contains `parse`): both lines below must be flagged.
pub fn parse_rec(buf: &[u8], off: usize) -> u16 {
    let end = off + 4;
    let cap = buf.len() as u16;
    let _ = end;
    cap
}

/// Checked arithmetic is the accepted form and must pass.
pub fn parse_ok(off: usize) -> Option<usize> {
    off.checked_add(4)
}

/// Cold path: identical arithmetic outside a hot-path function name is out
/// of E002 scope.
pub fn helper(off: usize) -> usize {
    off + 4
}
