//! Fixture crate root with seeded E001 panic-surface violations and an
//! incomplete hygiene header (E003: the `missing_docs` deny and the
//! unwrap/expect gate are deliberately absent).
#![forbid(unsafe_code)]

/// Seeded E001: `.unwrap()` in ingest code.
pub fn first_byte(o: Option<u8>) -> u8 {
    o.unwrap()
}

/// Seeded E001: `panic!` in ingest code.
pub fn boom() {
    panic!("boom");
}

/// Seeded E001: computed slice index in ingest code.
pub fn at(b: &[u8], off: usize) -> u8 {
    b[off]
}

/// A justified, suppressed index: the fixture tests assert this one does
/// NOT appear in the findings but DOES appear in the suppressed count.
pub fn at_guarded(b: &[u8], off: usize) -> u8 {
    // ent-lint: allow(E001) — caller guarantees off < b.len()
    b[off]
}
