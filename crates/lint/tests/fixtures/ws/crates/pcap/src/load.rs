//! Seeded E008 violations: a stringly-typed `Result`, a fallible
//! operation smuggled through `Option`, and a truncating cast inside
//! `Err(..)` — plus the taxonomy-typed form that must stay quiet.

/// Seeded E008: `String` is not a taxonomy error.
pub fn load_header(b: &[u8]) -> Result<u32, String> {
    if b.len() < 4 {
        return Err("short header".to_string());
    }
    Ok(0)
}

/// Seeded E008: a fallible `open` must return a typed `Result`, not
/// smuggle the failure through `Option`.
pub fn open_trace(path: &str) -> Option<u32> {
    let _ = path;
    None
}

/// Seeded E008: the cast inside `Err(..)` silently drops width.
pub fn restore_index(v: u64) -> Result<u32, PcapError> {
    Err(PcapError::bad_offset(v as u32))
}

/// Clean: taxonomy error on a fallible name passes.
pub fn load_count(b: &[u8]) -> Result<u32, PcapError> {
    let _ = b;
    Ok(1)
}

/// Clean: a predicate is not a fallible operation (`payload` must not
/// trip the `load` marker).
pub fn has_payload(b: &[u8]) -> bool {
    !b.is_empty()
}
