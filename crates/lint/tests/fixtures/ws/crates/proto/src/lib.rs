//! Fixture proto crate root carrying the full hygiene header; E003 must
//! stay quiet about this file.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
