//! DNS analyzer stub: listed in the registry and present on disk, so E004
//! must not flag it.
