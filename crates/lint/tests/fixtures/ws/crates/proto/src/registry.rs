//! Fixture registry with deliberate E004 mismatches in both directions:
//! `ghost` is listed but has no module file, and `http.rs` exists but is
//! not listed.

/// The analyzer roster the linter cross-checks against `src/*.rs`.
pub const ANALYZER_MODULES: &[&str] = &["dns", "ghost"];
