//! HTTP analyzer stub: present on disk but missing from
//! `ANALYZER_MODULES`, which E004 must flag.
