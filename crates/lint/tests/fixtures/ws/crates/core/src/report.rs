//! Seeded E006 violations: sink-reachable std-map iteration, a wall-clock
//! read in analysis code, and float accumulation over unordered
//! iteration — plus the clean escape forms that must stay quiet.

use std::collections::HashMap;
use std::time::Instant;

/// Seeded E006: iteration order leaks straight into the report sink.
pub fn render_report(m: &HashMap<u32, u64>) {
    for (k, v) in m.iter() {
        push_row(k, v);
    }
}

/// Seeded E006: wall clock read inside an analysis crate.
pub fn tally_epoch() {
    let _t = Instant::now();
}

/// Seeded E006: float `+=` whose summation order follows map order.
pub fn mean_latency(m: &HashMap<u32, f64>) -> f64 {
    let mut total: f64 = 0.0;
    for v in m.values() {
        total += *v;
    }
    total
}

/// Clean: keys are sorted before emission, so order cannot leak.
pub fn render_sorted(m: &HashMap<u32, u64>) {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    for k in ks {
        if let Some(v) = m.get(&k) {
            push_row(&k, v);
        }
    }
}

/// Clean: an order-insensitive reduction commutes over any iteration.
pub fn render_total(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}

/// Clean: hasher-explicit maps have a deterministic seed by contract.
pub fn render_fx(m: &HashMap<u32, u64, FxBuildHasher>) {
    for (k, v) in m.iter() {
        push_row(k, v);
    }
}

fn push_row(_k: &u32, _v: &u64) {}
