//! Seeded E009 (emitter half): a bench-JSON emitter whose keys must all
//! be test-covered. The schema const is referenced via `format!`
//! interpolation, and one key is emitted from a shared helper reached
//! through the call graph — both resolution paths the lint must follow.

/// Fixture schema tag.
pub const BENCH_SCHEMA: &str = "ent-bench-pipeline/1";

/// Emitter root: writes the schema tag and a covered key.
pub fn bench_json() -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"schema\": \"{BENCH_SCHEMA}\", "));
    out.push_str("\"packets\": 1, ");
    push_stat(&mut out);
    out
}

/// Seeded E009: `ghost_key` is emitted through this helper but never
/// referenced from any test.
fn push_stat(out: &mut String) {
    out.push_str("\"ghost_key\": 2}");
}
