//! Reproduces Table 42 and Figure 77 of the paper. The fixture test file
//! references Table 42 only, so E005 must flag exactly Figure 77.

/// Placeholder analysis entry point.
pub fn foo() {}
