//! Seeded E009 (checkpoint half): one payload field has no test
//! reference anywhere in the fixture workspace.

/// Checkpoint payload (fixture shape).
pub struct Checkpoint {
    /// Covered: the fixture obs test constructs this field by name.
    pub epoch_index: u64,
    /// Seeded E009: never referenced from test code.
    pub ghost_field: u64,
}
