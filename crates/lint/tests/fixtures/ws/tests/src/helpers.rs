//! Seeded harness-sweep violation: a bare `.unwrap()` in a shared test
//! helper (outside any `#[test]` region) must be flagged as E001, while
//! the same call inside a `#[test]` fn stays exempt.

/// Seeded E001-lite: bare unwrap in helper code shared by many tests.
pub fn parse_num(s: &str) -> u32 {
    s.parse().unwrap()
}

/// Clean: `expect` with a message names the failing fixture.
pub fn parse_num_named(s: &str) -> u32 {
    s.parse().expect("fixture numbers are decimal")
}

#[test]
fn unwrap_inside_a_test_region_is_exempt() {
    let _: u32 = "1".parse().unwrap();
}
