//! Asserts the Table 42 shape — this reference is what keeps the
//! fixture's Table 42 claim out of the E005 findings.
