//! Fixture coverage for the E009 rule: references `schema`, `packets`
//! (as JSON-key strings) and `epoch_index` (as a struct field), so only
//! the seeded `ghost_field`/`ghost_key` stay uncovered.

#[test]
fn obs_roundtrip_covers_the_live_keys() {
    let doc = "{\"schema\": \"ent-bench-pipeline/1\", \"packets\": 1}";
    let epoch_index = 7u64;
    assert!(doc.contains("packets") && epoch_index > 0);
}
