//! Capture timestamps.
//!
//! Trace timestamps are microseconds since an arbitrary epoch (classic pcap
//! resolution). A dedicated type avoids unit confusion between seconds,
//! milliseconds and microseconds that plagues trace tooling.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A capture timestamp with microsecond resolution.
///
/// Internally a `u64` count of microseconds since the trace epoch. Supports
/// ordering, differencing (yielding microseconds) and offsetting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (trace epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Timestamp(0)
        } else {
            Timestamp((s * 1e6).round() as u64)
        }
    }

    /// Microseconds since the epoch.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Split into (seconds, microseconds-within-second) as stored by pcap.
    #[inline]
    pub const fn to_sec_usec(self) -> (u32, u32) {
        ((self.0 / 1_000_000) as u32, (self.0 % 1_000_000) as u32)
    }

    /// Recombine a pcap (seconds, microseconds) pair.
    #[inline]
    pub const fn from_sec_usec(sec: u32, usec: u32) -> Self {
        Timestamp(sec as u64 * 1_000_000 + usec as u64)
    }

    /// Saturating difference in microseconds (`self - earlier`).
    #[inline]
    pub const fn saturating_micros_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Checked addition of a microsecond offset.
    #[inline]
    pub const fn checked_add_micros(self, us: u64) -> Option<Timestamp> {
        match self.0.checked_add(us) {
            Some(v) => Some(Timestamp(v)),
            None => None,
        }
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    /// Offset by microseconds.
    #[inline]
    fn add(self, us: u64) -> Timestamp {
        Timestamp(self.0 + us)
    }
}

impl AddAssign<u64> for Timestamp {
    #[inline]
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub for Timestamp {
    type Output = u64;
    /// Difference in microseconds; panics in debug if `rhs` is later.
    #[inline]
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = Timestamp::from_millis(1_234);
        assert_eq!(t.micros(), 1_234_000);
        assert_eq!(t.secs_f64(), 1.234);
        assert_eq!(t.to_sec_usec(), (1, 234_000));
        assert_eq!(Timestamp::from_sec_usec(1, 234_000), t);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Timestamp::from_secs_f64(-1.0), Timestamp::ZERO);
        assert_eq!(Timestamp::from_secs_f64(0.5).micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let a = Timestamp::from_micros(100);
        let b = a + 50;
        assert_eq!(b - a, 50);
        assert_eq!(a.saturating_micros_since(b), 0);
        assert_eq!(b.saturating_micros_since(a), 50);
    }

    #[test]
    fn display_pads_microseconds() {
        assert_eq!(Timestamp::from_micros(1_000_005).to_string(), "1.000005");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Timestamp::from_micros(u64::MAX).checked_add_micros(1), None);
        assert!(Timestamp::ZERO.checked_add_micros(5).is_some());
    }
}
