//! Ethernet II framing.
//!
//! The LBNL traces are Ethernet captures; the network-layer breakdown of the
//! paper's Table 2 (IP vs ARP vs IPX vs other) is driven entirely by the
//! EtherType / 802.3 length field parsed here.

use crate::{be16, put_be16, Error, Result};
use core::fmt;

/// Minimum Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// True if the group bit (least-significant bit of the first octet) is
    /// set — multicast and broadcast destinations.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Derive a locally-administered unicast MAC from a 32-bit host id.
    /// Used by the trace generator for stable per-host addresses.
    pub fn from_host_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x1B, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Values of the EtherType field relevant to the study, plus an escape for
/// everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Novell IPX via EtherType 0x8137 (Ethernet II framing).
    Ipx,
    /// An IEEE 802.3 length field (value ≤ 1500): the payload is
    /// LLC/SNAP or raw-802.3 IPX ("other" in the paper's Table 2 unless the
    /// raw-IPX signature is present).
    Ieee8023Length(u16),
    /// Any other EtherType.
    Other(u16),
}

impl EtherType {
    /// Decode the 16-bit type/length field.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            0x8137 => EtherType::Ipx,
            x if x <= 1500 => EtherType::Ieee8023Length(x),
            x => EtherType::Other(x),
        }
    }

    /// Encode back to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Ipx => 0x8137,
            EtherType::Ieee8023Length(x) => x,
            EtherType::Other(x) => x,
        }
    }
}

/// A parsed Ethernet frame header (borrowing the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Type/length field.
    pub ethertype: EtherType,
    /// Bytes after the 14-byte header (possibly capture-truncated).
    pub payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Parse an Ethernet II header.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Frame<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(be16(buf, 12)),
            payload: &buf[HEADER_LEN..],
        })
    }
}

/// Emit an Ethernet II header followed by `payload` into a fresh vector.
pub fn emit(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    put_be16(&mut buf, 12, ethertype.to_u16());
    buf[HEADER_LEN..].copy_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_emit_roundtrip() {
        let frame = emit(
            MacAddr::BROADCAST,
            MacAddr([1, 2, 3, 4, 5, 6]),
            EtherType::Arp,
            &[0xAA, 0xBB],
        );
        let f = Frame::parse(&frame).unwrap();
        assert!(f.dst.is_broadcast());
        assert_eq!(f.src, MacAddr([1, 2, 3, 4, 5, 6]));
        assert_eq!(f.ethertype, EtherType::Arp);
        assert_eq!(f.payload, &[0xAA, 0xBB]);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Frame::parse(&[0u8; 13]).unwrap_err(), Error::Truncated);
        assert!(Frame::parse(&[0u8; 14]).is_ok());
    }

    #[test]
    fn ethertype_classification() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x05DC), EtherType::Ieee8023Length(1500));
        assert_eq!(EtherType::from_u16(0x88CC), EtherType::Other(0x88CC));
        for v in [0x0800u16, 0x0806, 0x86DD, 0x8137, 100, 0x9999] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr([0x01, 0, 0x5E, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn host_id_macs_are_stable_unicast() {
        let a = MacAddr::from_host_id(77);
        assert_eq!(a, MacAddr::from_host_id(77));
        assert!(!a.is_multicast());
        assert_ne!(a, MacAddr::from_host_id(78));
    }

    #[test]
    fn display_format() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
