//! The Internet checksum (RFC 1071) used by IPv4, TCP, UDP and ICMP.

use crate::ipv4;

/// Incremental ones-complement sum over byte data.
///
/// Fold with [`Checksum::finish`] to obtain the 16-bit checksum value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Start a new checksum computation.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Feed bytes into the sum. Data fed across multiple calls must be
    /// 16-bit aligned at call boundaries (each call treats its slice as a
    /// fresh run of 16-bit words, padding a trailing odd byte with zero).
    pub fn add_bytes(&mut self, data: &[u8]) -> &mut Self {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        if let [last] = chunks.remainder() {
            self.sum += u16::from_be_bytes([*last, 0]) as u32;
        }
        self
    }

    /// Feed a 16-bit word.
    pub fn add_u16(&mut self, v: u16) -> &mut Self {
        self.sum += v as u32;
        self
    }

    /// Fold carries and return the ones-complement checksum.
    pub fn finish(&self) -> u16 {
        let mut s = self.sum;
        while s > 0xFFFF {
            s = (s & 0xFFFF) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Compute the checksum of a contiguous buffer (e.g. an IPv4 header with its
/// checksum field zeroed).
pub fn of(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Compute a TCP/UDP checksum including the IPv4 pseudo-header.
///
/// `segment` must be the full transport header + payload with the checksum
/// field zeroed.
pub fn transport(src: ipv4::Addr, dst: ipv4::Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(protocol as u16);
    c.add_u16(segment.len() as u16);
    c.add_bytes(segment);
    c.finish()
}

/// Verify a buffer whose checksum field is *included*: a correct buffer sums
/// to zero after folding.
pub fn verify(data: &[u8]) -> bool {
    of(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example adapted from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert_eq!(of(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_zero() {
        assert_eq!(of(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn verify_includes_checksum_field() {
        // Known-good IPv4 header from RFC 1071-era literature.
        let mut hdr = [
            0x45u8, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let ck = of(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&hdr));
        hdr[4] ^= 0xFF;
        assert!(!verify(&hdr));
    }

    #[test]
    fn transport_pseudo_header_changes_sum() {
        let seg = [0u8; 8];
        let a = transport(ipv4::Addr::new(10, 0, 0, 1), ipv4::Addr::new(10, 0, 0, 2), 6, &seg);
        let b = transport(ipv4::Addr::new(10, 0, 0, 1), ipv4::Addr::new(10, 0, 0, 3), 6, &seg);
        assert_ne!(a, b);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u8..64).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..32]).add_bytes(&data[32..]);
        assert_eq!(c.finish(), of(&data));
    }
}
