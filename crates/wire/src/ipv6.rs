//! Minimal IPv6 header parsing.
//!
//! The 2004–05 LBNL traces contain essentially no IPv6 *traffic* (though
//! 17–25% of DNS queries ask for AAAA records, §5.1.3); we parse the fixed
//! header so such packets are classified rather than dropped as malformed.

use crate::{be16, Error, Result};
use core::fmt;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// A 128-bit IPv6 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub [u8; 16]);

impl Addr {
    /// Multicast (ff00::/8).
    pub fn is_multicast(&self) -> bool {
        self.0[0] == 0xFF
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, pair) in self.0.chunks(2).enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{:x}", u16::from_be_bytes([pair[0], pair[1]]))?;
        }
        Ok(())
    }
}

/// A parsed fixed IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header<'a> {
    /// Payload length field.
    pub payload_len: u16,
    /// Next-header protocol number.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Captured payload.
    pub payload: &'a [u8],
}

impl<'a> Header<'a> {
    /// Parse the fixed header.
    pub fn parse(buf: &'a [u8]) -> Result<Header<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 4 != 6 {
            return Err(Error::Malformed);
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Ok(Header {
            payload_len: be16(buf, 4),
            next_header: buf[6],
            hop_limit: buf[7],
            src: Addr(src),
            dst: Addr(dst),
            payload: &buf[HEADER_LEN..],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let mut buf = vec![0u8; 44];
        buf[0] = 0x60;
        buf[4] = 0;
        buf[5] = 4;
        buf[6] = 17; // UDP
        buf[7] = 64;
        buf[8] = 0xFE;
        buf[24] = 0xFF;
        let h = Header::parse(&buf).unwrap();
        assert_eq!(h.payload_len, 4);
        assert_eq!(h.next_header, 17);
        assert!(h.dst.is_multicast());
        assert!(!h.src.is_multicast());
        assert_eq!(h.payload.len(), 4);
    }

    #[test]
    fn rejects_wrong_version_and_short() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x40;
        assert_eq!(Header::parse(&buf).unwrap_err(), Error::Malformed);
        assert_eq!(Header::parse(&buf[..39]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn display() {
        let a = Addr([0xfe, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.to_string(), "fe80:0:0:0:0:0:0:1");
    }
}
