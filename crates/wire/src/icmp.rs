//! ICMP message parsing and emission.
//!
//! The paper treats ICMP echo exchanges as "connections" (Table 3) and most
//! of the external scanners it removes are ICMP probes, so echo semantics and
//! the ident/seq pair matter for flow keying.

use crate::{be16, checksum, put_be16, Error, Result};

/// Minimum ICMP header length.
pub const HEADER_LEN: usize = 8;

/// ICMP message types of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Everything else.
    Other(u8),
}

impl MessageType {
    /// Decode a type code.
    pub fn from_u8(v: u8) -> MessageType {
        match v {
            0 => MessageType::EchoReply,
            3 => MessageType::DestUnreachable,
            8 => MessageType::EchoRequest,
            11 => MessageType::TimeExceeded,
            x => MessageType::Other(x),
        }
    }

    /// Encode to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            MessageType::EchoReply => 0,
            MessageType::DestUnreachable => 3,
            MessageType::EchoRequest => 8,
            MessageType::TimeExceeded => 11,
            MessageType::Other(x) => x,
        }
    }
}

/// A parsed ICMP message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message<'a> {
    /// Message type.
    pub mtype: MessageType,
    /// Sub-code.
    pub code: u8,
    /// For echo request/reply: the identifier field; otherwise raw bytes 4–5.
    pub ident: u16,
    /// For echo request/reply: the sequence field; otherwise raw bytes 6–7.
    pub seq: u16,
    /// Bytes after the 8-byte header.
    pub payload: &'a [u8],
}

impl<'a> Message<'a> {
    /// Parse an ICMP message.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Message<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Message {
            mtype: MessageType::from_u8(buf[0]),
            code: buf[1],
            ident: be16(buf, 4),
            seq: be16(buf, 6),
            payload: &buf[HEADER_LEN..],
        })
    }
}

/// Emit an ICMP message (checksummed).
pub fn emit(mtype: MessageType, code: u8, ident: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    buf[0] = mtype.to_u8();
    buf[1] = code;
    put_be16(&mut buf, 4, ident);
    put_be16(&mut buf, 6, seq);
    buf[HEADER_LEN..].copy_from_slice(payload);
    let ck = checksum::of(&buf);
    put_be16(&mut buf, 2, ck);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = emit(MessageType::EchoRequest, 0, 0x42, 7, b"ping");
        let p = Message::parse(&m).unwrap();
        assert_eq!(p.mtype, MessageType::EchoRequest);
        assert_eq!(p.ident, 0x42);
        assert_eq!(p.seq, 7);
        assert_eq!(p.payload, b"ping");
        assert!(checksum::verify(&m));
    }

    #[test]
    fn truncated() {
        assert_eq!(Message::parse(&[0u8; 7]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn type_codes_roundtrip() {
        for v in [0u8, 3, 8, 11, 5, 13, 255] {
            assert_eq!(MessageType::from_u8(v).to_u8(), v);
        }
    }
}
