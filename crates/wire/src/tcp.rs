//! TCP segment parsing and emission.

use crate::{be16, be32, checksum, ipv4, put_be16, put_be32, Error, Result};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(pub u8);

impl Flags {
    /// No flags set.
    pub const NONE: Flags = Flags(0);
    /// FIN.
    pub const FIN: Flags = Flags(0x01);
    /// SYN.
    pub const SYN: Flags = Flags(0x02);
    /// RST.
    pub const RST: Flags = Flags(0x04);
    /// PSH.
    pub const PSH: Flags = Flags(0x08);
    /// ACK.
    pub const ACK: Flags = Flags(0x10);
    /// URG.
    pub const URG: Flags = Flags(0x20);

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience accessors.
    pub const fn syn(self) -> bool {
        self.contains(Flags::SYN)
    }
    /// True if ACK set.
    pub const fn ack(self) -> bool {
        self.contains(Flags::ACK)
    }
    /// True if FIN set.
    pub const fn fin(self) -> bool {
        self.contains(Flags::FIN)
    }
    /// True if RST set.
    pub const fn rst(self) -> bool {
        self.contains(Flags::RST)
    }
}

impl core::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl core::fmt::Display for Flags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (bit, ch) in [
            (Flags::SYN, 'S'),
            (Flags::FIN, 'F'),
            (Flags::RST, 'R'),
            (Flags::PSH, 'P'),
            (Flags::ACK, 'A'),
            (Flags::URG, 'U'),
        ] {
            if self.contains(bit) {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// A parsed TCP segment header with its (possibly truncated) payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (valid when ACK flag set).
    pub ack: u32,
    /// Header length in bytes (20–60).
    pub header_len: u8,
    /// Flags.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
    /// Captured payload (may be truncated by snaplen).
    pub payload: &'a [u8],
}

impl<'a> Segment<'a> {
    /// Parse a TCP header. The header itself must be fully captured; payload
    /// truncation is tolerated (`wire_payload_len` on the IP layer carries
    /// the true size).
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Segment<'a>> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let data_off = usize::from(buf.get(12).copied().unwrap_or(0) >> 4).saturating_mul(4);
        if data_off < MIN_HEADER_LEN {
            return Err(Error::Malformed);
        }
        // Under snaplen truncation the options may be cut; degrade to the
        // 20-byte header and an empty payload rather than failing, so that
        // header-only traces (D1/D2) still yield flags and ports.
        let (hdr_len, payload) = (data_off, buf.get(data_off..).unwrap_or(&[]));
        Ok(Segment {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            seq: be32(buf, 4),
            ack: be32(buf, 8),
            header_len: u8::try_from(hdr_len).unwrap_or(u8::MAX),
            flags: Flags(buf[13] & 0x3F),
            window: be16(buf, 14),
            payload,
        })
    }
}

/// Emit a 20-byte TCP header + payload, checksummed against the given
/// IPv4 pseudo-header.
#[allow(clippy::too_many_arguments)]
pub fn emit(
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: Flags,
    window: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = vec![0u8; MIN_HEADER_LEN + payload.len()];
    put_be16(&mut buf, 0, src_port);
    put_be16(&mut buf, 2, dst_port);
    put_be32(&mut buf, 4, seq);
    put_be32(&mut buf, 8, ack);
    buf[12] = 5 << 4;
    buf[13] = flags.0;
    put_be16(&mut buf, 14, window);
    buf[MIN_HEADER_LEN..].copy_from_slice(payload);
    let ck = checksum::transport(src_ip, dst_ip, 6, &buf);
    put_be16(&mut buf, 16, ck);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (ipv4::Addr, ipv4::Addr) {
        (ipv4::Addr::new(10, 0, 0, 1), ipv4::Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn roundtrip() {
        let (s, d) = addrs();
        let seg = emit(s, d, 12345, 80, 1000, 2000, Flags::SYN | Flags::ACK, 8192, b"xyz");
        let p = Segment::parse(&seg).unwrap();
        assert_eq!(p.src_port, 12345);
        assert_eq!(p.dst_port, 80);
        assert_eq!(p.seq, 1000);
        assert_eq!(p.ack, 2000);
        assert!(p.flags.syn() && p.flags.ack() && !p.flags.fin());
        assert_eq!(p.window, 8192);
        assert_eq!(p.payload, b"xyz");
    }

    #[test]
    fn checksum_valid_over_pseudo_header() {
        let (s, d) = addrs();
        let seg = emit(s, d, 1, 2, 0, 0, Flags::ACK, 100, b"data!");
        assert_eq!(checksum::transport(s, d, 6, &seg), 0);
    }

    #[test]
    fn truncated_options_degrade_gracefully() {
        let (s, d) = addrs();
        let mut seg = emit(s, d, 1, 2, 0, 0, Flags::SYN, 100, &[]);
        seg[12] = 8 << 4; // claim 32-byte header, but buffer is 20
        let p = Segment::parse(&seg).unwrap();
        assert!(p.flags.syn());
        assert!(p.payload.is_empty());
    }

    #[test]
    fn too_short_and_malformed() {
        assert_eq!(Segment::parse(&[0u8; 19]).unwrap_err(), Error::Truncated);
        let (s, d) = addrs();
        let mut seg = emit(s, d, 1, 2, 0, 0, Flags::NONE, 0, &[]);
        seg[12] = 2 << 4; // 8-byte header: malformed
        assert_eq!(Segment::parse(&seg).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn flags_display() {
        assert_eq!((Flags::SYN | Flags::ACK).to_string(), "SA");
        assert_eq!(Flags::RST.to_string(), "R");
        assert_eq!(Flags::NONE.to_string(), "");
    }
}
