//! IPv4 header parsing and emission.

use crate::{be16, checksum, put_be16, Error, Result};
use core::fmt;

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets in network order.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Class-D multicast range 224.0.0.0/4.
    pub const fn is_multicast(self) -> bool {
        self.0 >> 28 == 0b1110
    }

    /// Limited broadcast 255.255.255.255.
    pub const fn is_broadcast(self) -> bool {
        self.0 == u32::MAX
    }

    /// True if this address falls inside `net/prefix_len`.
    pub const fn in_prefix(self, net: Addr, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let shift = 32 - prefix_len as u32;
        (self.0 >> shift) == (net.0 >> shift)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// IP protocol numbers seen in the traces (paper Table 3 and §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// IGMP (2).
    Igmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// GRE (47).
    Gre,
    /// IPSEC ESP (50).
    Esp,
    /// PIM (103).
    Pim,
    /// Anything else, including the unidentified protocol 224 the paper notes.
    Other(u8),
}

impl Protocol {
    /// Decode a protocol number.
    pub fn from_u8(v: u8) -> Protocol {
        match v {
            1 => Protocol::Icmp,
            2 => Protocol::Igmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            47 => Protocol::Gre,
            50 => Protocol::Esp,
            103 => Protocol::Pim,
            x => Protocol::Other(x),
        }
    }

    /// Encode back to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Igmp => 2,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Gre => 47,
            Protocol::Esp => 50,
            Protocol::Pim => 103,
            Protocol::Other(x) => x,
        }
    }
}

/// A parsed IPv4 header with its (possibly truncated) payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header<'a> {
    /// Header length in bytes (20–60).
    pub header_len: u8,
    /// Total datagram length from the header — the authoritative on-the-wire
    /// size even when the capture truncated the payload.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Captured payload bytes (may be shorter than `total_len - header_len`
    /// under snaplen truncation).
    pub payload: &'a [u8],
}

impl<'a> Header<'a> {
    /// Parse an IPv4 header. Tolerates truncated payloads but rejects
    /// truncated or structurally invalid headers.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Header<'a>> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let ihl = usize::from(buf[0] & 0x0F).saturating_mul(4);
        if ihl < MIN_HEADER_LEN {
            return Err(Error::Malformed);
        }
        if buf.len() < ihl {
            return Err(Error::Truncated);
        }
        let total_len = be16(buf, 2);
        if (total_len as usize) < ihl {
            return Err(Error::Malformed);
        }
        let captured_payload_end = core::cmp::min(buf.len(), total_len as usize);
        let payload = buf
            .get(ihl..core::cmp::max(ihl, captured_payload_end))
            .unwrap_or(&[]);
        Ok(Header {
            header_len: u8::try_from(ihl).unwrap_or(u8::MAX),
            total_len,
            ident: be16(buf, 4),
            ttl: buf[8],
            protocol: Protocol::from_u8(buf[9]),
            src: Addr(crate::be32(buf, 12)),
            dst: Addr(crate::be32(buf, 16)),
            payload,
        })
    }

    /// On-the-wire payload length implied by the header (not capped by the
    /// capture snaplen). This is what byte-volume analyses must use.
    pub fn wire_payload_len(&self) -> usize {
        self.total_len as usize - self.header_len as usize
    }
}

/// Emit a 20-byte IPv4 header (checksummed) followed by `payload`.
pub fn emit(src: Addr, dst: Addr, protocol: Protocol, ttl: u8, ident: u16, payload: &[u8]) -> Vec<u8> {
    let total = MIN_HEADER_LEN + payload.len();
    assert!(total <= u16::MAX as usize, "IPv4 datagram too large");
    let mut buf = vec![0u8; total];
    buf[0] = 0x45; // version 4, IHL 5
    put_be16(&mut buf, 2, total as u16);
    put_be16(&mut buf, 4, ident);
    buf[8] = ttl;
    buf[9] = protocol.to_u8();
    buf[12..16].copy_from_slice(&src.octets());
    buf[16..20].copy_from_slice(&dst.octets());
    let ck = checksum::of(&buf[..MIN_HEADER_LEN]);
    put_be16(&mut buf, 10, ck);
    buf[MIN_HEADER_LEN..].copy_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = emit(
            Addr::new(10, 1, 2, 3),
            Addr::new(192, 168, 0, 1),
            Protocol::Udp,
            64,
            0x1234,
            b"hello",
        );
        let h = Header::parse(&p).unwrap();
        assert_eq!(h.src, Addr::new(10, 1, 2, 3));
        assert_eq!(h.dst, Addr::new(192, 168, 0, 1));
        assert_eq!(h.protocol, Protocol::Udp);
        assert_eq!(h.ttl, 64);
        assert_eq!(h.ident, 0x1234);
        assert_eq!(h.payload, b"hello");
        assert_eq!(h.wire_payload_len(), 5);
        assert!(checksum::verify(&p[..20]));
    }

    #[test]
    fn truncated_payload_reports_wire_len() {
        let p = emit(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), Protocol::Tcp, 64, 0, &[0u8; 100]);
        // Simulate snaplen 68 on the IP layer (68 - 14 ethernet = 54 bytes).
        let h = Header::parse(&p[..54]).unwrap();
        assert_eq!(h.payload.len(), 34);
        assert_eq!(h.wire_payload_len(), 100);
    }

    #[test]
    fn bad_version_and_lengths() {
        let mut p = emit(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), Protocol::Tcp, 64, 0, &[]);
        p[0] = 0x65;
        assert_eq!(Header::parse(&p).unwrap_err(), Error::Malformed);
        p[0] = 0x41; // IHL 4 -> 16 bytes, invalid
        assert_eq!(Header::parse(&p).unwrap_err(), Error::Malformed);
        assert_eq!(Header::parse(&[0u8; 10]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn total_len_shorter_than_header_is_malformed() {
        let mut p = emit(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), Protocol::Tcp, 64, 0, &[]);
        p[2] = 0;
        p[3] = 10;
        assert_eq!(Header::parse(&p).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn multicast_and_prefix() {
        assert!(Addr::new(224, 0, 0, 1).is_multicast());
        assert!(Addr::new(239, 255, 1, 1).is_multicast());
        assert!(!Addr::new(223, 255, 255, 255).is_multicast());
        assert!(Addr::new(255, 255, 255, 255).is_broadcast());
        let net = Addr::new(131, 243, 0, 0);
        assert!(Addr::new(131, 243, 7, 9).in_prefix(net, 16));
        assert!(!Addr::new(131, 244, 7, 9).in_prefix(net, 16));
        assert!(Addr::new(8, 8, 8, 8).in_prefix(net, 0));
    }

    #[test]
    fn protocol_codes_roundtrip() {
        for v in [1u8, 2, 6, 17, 47, 50, 103, 224, 255] {
            assert_eq!(Protocol::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Addr::new(131, 243, 1, 99).to_string(), "131.243.1.99");
    }
}
