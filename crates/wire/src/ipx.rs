//! Novell IPX header parsing and emission.
//!
//! IPX is the dominant non-IP protocol in the LBNL traces (paper Table 2:
//! 32–80% of non-IP packets), mostly broadcast SAP/RIP chatter confined to
//! subnets. We parse enough of the header to classify and count it.

use crate::{be16, put_be16, Error, Result};

/// IPX header length.
pub const HEADER_LEN: usize = 30;

/// IPX packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Unknown/any (0).
    Unknown,
    /// RIP (1).
    Rip,
    /// Echo (2).
    Echo,
    /// SPX (5).
    Spx,
    /// NCP (17).
    Ncp,
    /// NetBIOS broadcast (20).
    NetBios,
    /// Other.
    Other(u8),
}

impl PacketType {
    /// Decode the packet-type octet.
    pub fn from_u8(v: u8) -> PacketType {
        match v {
            0 => PacketType::Unknown,
            1 => PacketType::Rip,
            2 => PacketType::Echo,
            5 => PacketType::Spx,
            17 => PacketType::Ncp,
            20 => PacketType::NetBios,
            x => PacketType::Other(x),
        }
    }

    /// Encode back to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            PacketType::Unknown => 0,
            PacketType::Rip => 1,
            PacketType::Echo => 2,
            PacketType::Spx => 5,
            PacketType::Ncp => 17,
            PacketType::NetBios => 20,
            PacketType::Other(x) => x,
        }
    }
}

/// An IPX network.node.socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// 32-bit network number.
    pub network: u32,
    /// 48-bit node (usually the MAC).
    pub node: [u8; 6],
    /// 16-bit socket.
    pub socket: u16,
}

/// A parsed IPX header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header<'a> {
    /// Packet length from the header (header + payload).
    pub length: u16,
    /// Packet type.
    pub ptype: PacketType,
    /// Destination address.
    pub dst: Addr,
    /// Source address.
    pub src: Addr,
    /// Captured payload.
    pub payload: &'a [u8],
}

fn addr_at(buf: &[u8], off: usize) -> Addr {
    let mut node = [0u8; 6];
    if let Some(src) = buf.get(off.saturating_add(4)..off.saturating_add(10)) {
        node.copy_from_slice(src);
    }
    Addr {
        network: crate::be32(buf, off),
        node,
        socket: be16(buf, off.saturating_add(10)),
    }
}

impl<'a> Header<'a> {
    /// Parse an IPX header; the checksum field must be 0xFFFF (IPX never
    /// checksums in practice) — anything else is treated as malformed.
    pub fn parse(buf: &'a [u8]) -> Result<Header<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if be16(buf, 0) != 0xFFFF {
            return Err(Error::Malformed);
        }
        let length = be16(buf, 2);
        if (length as usize) < HEADER_LEN {
            return Err(Error::Malformed);
        }
        let end = core::cmp::min(buf.len(), length as usize);
        Ok(Header {
            length,
            ptype: PacketType::from_u8(buf[5]),
            dst: addr_at(buf, 6),
            src: addr_at(buf, 18),
            payload: buf.get(HEADER_LEN..core::cmp::max(HEADER_LEN, end)).unwrap_or(&[]),
        })
    }
}

/// Emit an IPX packet.
pub fn emit(ptype: PacketType, src: Addr, dst: Addr, payload: &[u8]) -> Vec<u8> {
    let total = HEADER_LEN + payload.len();
    let mut buf = vec![0u8; total];
    put_be16(&mut buf, 0, 0xFFFF);
    put_be16(&mut buf, 2, total as u16);
    buf[4] = 0; // transport control
    buf[5] = ptype.to_u8();
    let put_addr = |buf: &mut [u8], off: usize, a: &Addr| {
        crate::put_be32(buf, off, a.network);
        if let Some(dst) = buf.get_mut(off.saturating_add(4)..off.saturating_add(10)) {
            dst.copy_from_slice(&a.node);
        }
        put_be16(buf, off.saturating_add(10), a.socket);
    };
    put_addr(&mut buf, 6, &dst);
    put_addr(&mut buf, 18, &src);
    buf[HEADER_LEN..].copy_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn an_addr(net: u32, sock: u16) -> Addr {
        Addr {
            network: net,
            node: [1, 2, 3, 4, 5, 6],
            socket: sock,
        }
    }

    #[test]
    fn roundtrip() {
        let buf = emit(PacketType::Unknown, an_addr(1, 0x452), an_addr(2, 0x4000), b"sap");
        let h = Header::parse(&buf).unwrap();
        assert_eq!(h.src.network, 1);
        assert_eq!(h.src.socket, 0x452);
        assert_eq!(h.dst.network, 2);
        assert_eq!(h.dst.socket, 0x4000);
        assert_eq!(h.payload, b"sap");
        assert_eq!(h.length as usize, HEADER_LEN + 3);
    }

    #[test]
    fn bad_checksum_field() {
        let mut buf = emit(PacketType::Rip, an_addr(1, 1), an_addr(2, 2), &[]);
        buf[0] = 0;
        assert_eq!(Header::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncated() {
        assert_eq!(Header::parse(&[0xFFu8; 29]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn type_codes_roundtrip() {
        for v in [0u8, 1, 2, 5, 17, 20, 4, 99] {
            assert_eq!(PacketType::from_u8(v).to_u8(), v);
        }
    }
}
