//! Fully parsed packet representation used throughout the pipeline.
//!
//! [`Packet::parse`] dissects a captured Ethernet frame into owned layer
//! summaries plus a borrowed payload slice. Parsing never fails for traffic
//! that merely uses a protocol we do not model — such packets are classified
//! as [`NetLayer::OtherL3`] / [`Transport::Other`] so the broad breakdowns of
//! the paper's §3 can still count them.

use crate::{arp, ethernet, icmp, ipv4, ipv6, ipx, tcp, udp, Error, Result};

/// The network-layer classification of a frame (paper Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetLayer {
    /// IPv4 with its parsed header fields.
    Ipv4 {
        /// Source address.
        src: ipv4::Addr,
        /// Destination address.
        dst: ipv4::Addr,
        /// Transport protocol number.
        protocol: ipv4::Protocol,
        /// Datagram total length (authoritative wire size).
        total_len: u16,
        /// IP TTL.
        ttl: u8,
        /// IP identification (used for duplicate detection).
        ident: u16,
    },
    /// IPv6 (rare in the traces; counted, not deeply analyzed).
    Ipv6 {
        /// Source address.
        src: ipv6::Addr,
        /// Destination address.
        dst: ipv6::Addr,
        /// Next-header value.
        next_header: u8,
    },
    /// ARP request/reply.
    Arp(arp::Packet),
    /// IPX datagram (type + sockets retained for SAP/RIP classification).
    Ipx {
        /// IPX packet type.
        ptype: ipx::PacketType,
        /// Source socket.
        src_socket: u16,
        /// Destination socket.
        dst_socket: u16,
    },
    /// Anything else above Ethernet ("other" row of Table 2).
    OtherL3(u16),
}

/// The transport-layer content of an IPv4 packet (paper Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// TCP segment.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Flags.
        flags: tcp::Flags,
        /// Receive window.
        window: u16,
        /// On-the-wire payload length (post-truncation arithmetic).
        wire_payload_len: u32,
    },
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// On-the-wire payload length.
        wire_payload_len: u32,
    },
    /// ICMP message.
    Icmp {
        /// Type.
        mtype: icmp::MessageType,
        /// Code.
        code: u8,
        /// Echo identifier.
        ident: u16,
        /// Echo sequence.
        seq: u16,
    },
    /// Another IP protocol (IGMP, ESP, PIM, GRE, 224, ...).
    Other(u8),
    /// No transport: non-IPv4 frames.
    None,
}

/// A dissected frame: link + network + transport summaries and the
/// application payload (borrowed from the capture buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<'a> {
    /// Destination MAC address.
    pub dst_mac: ethernet::MacAddr,
    /// Source MAC address.
    pub src_mac: ethernet::MacAddr,
    /// Network-layer summary.
    pub net: NetLayer,
    /// Transport-layer summary (IPv4 only).
    pub transport: Transport,
    /// Captured application payload (may be snaplen-truncated; the
    /// `wire_payload_len` fields carry true sizes).
    payload: &'a [u8],
}

impl<'a> Packet<'a> {
    /// Dissect a captured Ethernet frame.
    ///
    /// Fails only if the Ethernet header itself is truncated, or an inner
    /// header is malformed beyond classification; unknown protocols succeed
    /// with `OtherL3` / `Transport::Other`.
    #[inline]
    pub fn parse(frame: &'a [u8]) -> Result<Packet<'a>> {
        let eth = ethernet::Frame::parse(frame)?;
        let mut payload: &[u8] = &[];
        let mut transport = Transport::None;
        let net = match eth.ethertype {
            ethernet::EtherType::Ipv4 => {
                let ip = ipv4::Header::parse(eth.payload)?;
                match ip.protocol {
                    ipv4::Protocol::Tcp => match tcp::Segment::parse(ip.payload) {
                        Ok(seg) => {
                            payload = seg.payload;
                            let hdr = seg.header_len as usize;
                            transport = Transport::Tcp {
                                src_port: seg.src_port,
                                dst_port: seg.dst_port,
                                seq: seg.seq,
                                ack: seg.ack,
                                flags: seg.flags,
                                window: seg.window,
                                wire_payload_len: ip.wire_payload_len().saturating_sub(hdr) as u32,
                            };
                        }
                        Err(Error::Truncated) => transport = Transport::Other(6),
                        Err(e) => return Err(e),
                    },
                    ipv4::Protocol::Udp => match udp::Datagram::parse(ip.payload) {
                        Ok(dg) => {
                            payload = dg.payload;
                            transport = Transport::Udp {
                                src_port: dg.src_port,
                                dst_port: dg.dst_port,
                                wire_payload_len: u32::try_from(dg.wire_payload_len())
                                    .unwrap_or(u32::MAX),
                            };
                        }
                        Err(Error::Truncated) => transport = Transport::Other(17),
                        Err(e) => return Err(e),
                    },
                    ipv4::Protocol::Icmp => match icmp::Message::parse(ip.payload) {
                        Ok(m) => {
                            payload = m.payload;
                            transport = Transport::Icmp {
                                mtype: m.mtype,
                                code: m.code,
                                ident: m.ident,
                                seq: m.seq,
                            };
                        }
                        Err(Error::Truncated) => transport = Transport::Other(1),
                        Err(e) => return Err(e),
                    },
                    other => transport = Transport::Other(other.to_u8()),
                }
                NetLayer::Ipv4 {
                    src: ip.src,
                    dst: ip.dst,
                    protocol: ip.protocol,
                    total_len: ip.total_len,
                    ttl: ip.ttl,
                    ident: ip.ident,
                }
            }
            ethernet::EtherType::Arp => match arp::Packet::parse(eth.payload) {
                Ok(a) => NetLayer::Arp(a),
                Err(_) => NetLayer::OtherL3(0x0806),
            },
            ethernet::EtherType::Ipx => match ipx::Header::parse(eth.payload) {
                Ok(x) => NetLayer::Ipx {
                    ptype: x.ptype,
                    src_socket: x.src.socket,
                    dst_socket: x.dst.socket,
                },
                Err(_) => NetLayer::OtherL3(0x8137),
            },
            ethernet::EtherType::Ipv6 => match ipv6::Header::parse(eth.payload) {
                Ok(v6) => NetLayer::Ipv6 {
                    src: v6.src,
                    dst: v6.dst,
                    next_header: v6.next_header,
                },
                Err(_) => NetLayer::OtherL3(0x86DD),
            },
            ethernet::EtherType::Ieee8023Length(_) => {
                // Raw 802.3 IPX starts with FF FF (the IPX "checksum").
                if eth.payload.len() >= 2 && eth.payload[0] == 0xFF && eth.payload[1] == 0xFF {
                    match ipx::Header::parse(eth.payload) {
                        Ok(x) => NetLayer::Ipx {
                            ptype: x.ptype,
                            src_socket: x.src.socket,
                            dst_socket: x.dst.socket,
                        },
                        Err(_) => NetLayer::OtherL3(0),
                    }
                } else {
                    NetLayer::OtherL3(0)
                }
            }
            ethernet::EtherType::Other(t) => NetLayer::OtherL3(t),
        };
        Ok(Packet {
            dst_mac: eth.dst,
            src_mac: eth.src,
            net,
            transport,
            payload,
        })
    }

    /// Captured application payload bytes.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// IPv4 addresses if this is an IPv4 packet.
    #[inline]
    pub fn ipv4_addrs(&self) -> Option<(ipv4::Addr, ipv4::Addr)> {
        match self.net {
            NetLayer::Ipv4 { src, dst, .. } => Some((src, dst)),
            _ => None,
        }
    }

    /// TCP summary if this is a TCP packet.
    #[inline]
    pub fn tcp(&self) -> Option<TcpSummary> {
        match self.transport {
            Transport::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                wire_payload_len,
            } => Some(TcpSummary {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                wire_payload_len,
            }),
            _ => None,
        }
    }

    /// UDP (src_port, dst_port, wire_payload_len) if this is a UDP packet.
    #[inline]
    pub fn udp(&self) -> Option<(u16, u16, u32)> {
        match self.transport {
            Transport::Udp {
                src_port,
                dst_port,
                wire_payload_len,
            } => Some((src_port, dst_port, wire_payload_len)),
            _ => None,
        }
    }

    /// True if the destination is an IPv4/Ethernet multicast or broadcast.
    #[inline]
    pub fn is_multicast(&self) -> bool {
        match &self.net {
            NetLayer::Ipv4 { dst, .. } => dst.is_multicast() || dst.is_broadcast(),
            NetLayer::Ipv6 { dst, .. } => dst.is_multicast(),
            _ => self.dst_mac.is_multicast(),
        }
    }

    /// Transport payload length as seen on the wire (0 for non-TCP/UDP).
    #[inline]
    pub fn wire_payload_len(&self) -> u32 {
        match self.transport {
            Transport::Tcp {
                wire_payload_len, ..
            }
            | Transport::Udp {
                wire_payload_len, ..
            } => wire_payload_len,
            _ => 0,
        }
    }
}

/// Owned copy of the TCP fields of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSummary {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: tcp::Flags,
    /// Receive window.
    pub window: u16,
    /// True payload length on the wire.
    pub wire_payload_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn parse_udp_frame() {
        let frame = build::udp_frame(
            &build::UdpFrameSpec {
                src_mac: ethernet::MacAddr::from_host_id(1),
                dst_mac: ethernet::MacAddr::from_host_id(2),
                src_ip: ipv4::Addr::new(10, 0, 0, 1),
                dst_ip: ipv4::Addr::new(10, 0, 0, 2),
                src_port: 1024,
                dst_port: 53,
                ttl: 64,
            },
            b"dnsq",
        );
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.udp(), Some((1024, 53, 4)));
        assert_eq!(p.payload(), b"dnsq");
        assert!(!p.is_multicast());
    }

    #[test]
    fn parse_arp_frame() {
        let a = arp::Packet {
            operation: arp::Operation::Request,
            sender_mac: ethernet::MacAddr::from_host_id(9),
            sender_ip: ipv4::Addr::new(10, 0, 0, 9),
            target_mac: ethernet::MacAddr([0; 6]),
            target_ip: ipv4::Addr::new(10, 0, 0, 1),
        };
        let frame = ethernet::emit(
            ethernet::MacAddr::BROADCAST,
            a.sender_mac,
            ethernet::EtherType::Arp,
            &a.emit(),
        );
        let p = Packet::parse(&frame).unwrap();
        assert!(matches!(p.net, NetLayer::Arp(ref pa) if pa.operation == arp::Operation::Request));
        assert!(p.is_multicast());
        assert_eq!(p.transport, Transport::None);
    }

    #[test]
    fn parse_raw_8023_ipx() {
        let ipx_pkt = ipx::emit(
            ipx::PacketType::Rip,
            ipx::Addr { network: 1, node: [1; 6], socket: 0x453 },
            ipx::Addr { network: 2, node: [2; 6], socket: 0x453 },
            &[0u8; 10],
        );
        let frame = ethernet::emit(
            ethernet::MacAddr::BROADCAST,
            ethernet::MacAddr::from_host_id(5),
            ethernet::EtherType::Ieee8023Length(ipx_pkt.len() as u16),
            &ipx_pkt,
        );
        let p = Packet::parse(&frame).unwrap();
        assert!(matches!(p.net, NetLayer::Ipx { ptype: ipx::PacketType::Rip, .. }));
    }

    #[test]
    fn snaplen68_tcp_keeps_flags_and_wire_len() {
        let frame = build::tcp_frame(
            &build::TcpFrameSpec {
                src_mac: ethernet::MacAddr::from_host_id(1),
                dst_mac: ethernet::MacAddr::from_host_id(2),
                src_ip: ipv4::Addr::new(10, 0, 0, 1),
                dst_ip: ipv4::Addr::new(10, 0, 0, 2),
                src_port: 40000,
                dst_port: 445,
                seq: 100,
                ack: 1,
                flags: tcp::Flags::ACK | tcp::Flags::PSH,
                window: 5000,
                ttl: 64,
            },
            &[0xAB; 1000],
        );
        let truncated = &frame[..68];
        let p = Packet::parse(truncated).unwrap();
        let t = p.tcp().unwrap();
        assert_eq!(t.dst_port, 445);
        assert!(t.flags.ack());
        assert_eq!(t.wire_payload_len, 1000);
        assert_eq!(p.payload().len(), 68 - 14 - 20 - 20);
    }

    #[test]
    fn unknown_protocols_classified_not_rejected() {
        // GRE-in-IP frame.
        let ip = ipv4::emit(
            ipv4::Addr::new(1, 1, 1, 1),
            ipv4::Addr::new(2, 2, 2, 2),
            ipv4::Protocol::Gre,
            64,
            0,
            &[0u8; 4],
        );
        let frame = ethernet::emit(
            ethernet::MacAddr::from_host_id(1),
            ethernet::MacAddr::from_host_id(2),
            ethernet::EtherType::Ipv4,
            &ip,
        );
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.transport, Transport::Other(47));
        // Unknown EtherType.
        let frame = ethernet::emit(
            ethernet::MacAddr::from_host_id(1),
            ethernet::MacAddr::from_host_id(2),
            ethernet::EtherType::Other(0x88CC),
            &[],
        );
        assert_eq!(Packet::parse(&frame).unwrap().net, NetLayer::OtherL3(0x88CC));
    }

    #[test]
    fn multicast_ipv4_detected() {
        let frame = build::udp_frame(
            &build::UdpFrameSpec {
                src_mac: ethernet::MacAddr::from_host_id(1),
                dst_mac: ethernet::MacAddr([0x01, 0x00, 0x5E, 0, 0, 1]),
                src_ip: ipv4::Addr::new(10, 0, 0, 1),
                dst_ip: ipv4::Addr::new(239, 1, 1, 1),
                src_port: 5000,
                dst_port: 5004,
                ttl: 16,
            },
            &[0u8; 100],
        );
        assert!(Packet::parse(&frame).unwrap().is_multicast());
    }
}
