//! # ent-wire — wire-format packet parsing and construction
//!
//! Typed, zero-copy *views* over byte slices for the protocols observed in the
//! LBNL enterprise traces of Pang et al. (IMC 2005): Ethernet II, ARP, IPX,
//! IPv4, IPv6 (headers only), TCP, UDP and ICMP — plus owned *builders* used by
//! the synthetic trace generator, and a fully parsed [`Packet`] representation
//! used by the analysis pipeline.
//!
//! The design follows the smoltcp idiom: each protocol module exposes a
//! view wrapper whose accessors read fields directly from the underlying
//! buffer after a single up-front length check, and builders that emit the
//! same format. No `unsafe` is used anywhere in this crate.
//!
//! ```
//! use ent_wire::{ethernet, ipv4, tcp, Packet};
//!
//! // Build a TCP/IPv4/Ethernet frame, then parse it back.
//! let payload = b"GET / HTTP/1.1\r\n\r\n";
//! let frame = ent_wire::build::tcp_frame(
//!     &ent_wire::build::TcpFrameSpec {
//!         src_mac: ethernet::MacAddr([0, 1, 2, 3, 4, 5]),
//!         dst_mac: ethernet::MacAddr([6, 7, 8, 9, 10, 11]),
//!         src_ip: ipv4::Addr::new(10, 0, 1, 2),
//!         dst_ip: ipv4::Addr::new(10, 0, 2, 3),
//!         src_port: 32768,
//!         dst_port: 80,
//!         seq: 1,
//!         ack: 1,
//!         flags: tcp::Flags::ACK | tcp::Flags::PSH,
//!         window: 65535,
//!         ttl: 64,
//!     },
//!     payload,
//! );
//! let pkt = Packet::parse(&frame).unwrap();
//! assert_eq!(pkt.tcp().unwrap().dst_port, 80);
//! assert_eq!(pkt.payload(), payload);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Parsing must be total over arbitrary bytes: panicking escape hatches
// are compile errors outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arp;
pub mod build;
pub mod checksum;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod ipx;
pub mod packet;
pub mod tcp;
pub mod time;
pub mod udp;

pub use packet::{NetLayer, Packet, Transport};
pub use time::Timestamp;

/// Errors produced while parsing wire formats.
///
/// Parsing is deliberately tolerant: analyses over truncated captures
/// (snaplen 68) must still classify packets whose payloads are cut off, so
/// [`Error::Truncated`] is distinguished from [`Error::Malformed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the protocol's minimum header, or shorter
    /// than a length declared inside the packet (typical of snaplen-truncated
    /// captures).
    Truncated,
    /// A field value is structurally invalid (bad version, impossible header
    /// length, inconsistent lengths).
    Malformed,
    /// The protocol or version is recognized but not supported by this
    /// analyzer (e.g. exotic ARP hardware types).
    Unsupported,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "packet truncated"),
            Error::Malformed => write!(f, "packet malformed"),
            Error::Unsupported => write!(f, "protocol unsupported"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide parse result.
pub type Result<T> = core::result::Result<T, Error>;

/// Read a big-endian `u16` at `off`. Total: a read past the end of the
/// buffer yields 0, so a missed caller-side length check degrades to a
/// zero field instead of aborting ingest.
#[inline]
pub(crate) fn be16(buf: &[u8], off: usize) -> u16 {
    match buf.get(off..off.saturating_add(2)) {
        Some(&[a, b]) => u16::from_be_bytes([a, b]),
        _ => 0,
    }
}

/// Read a big-endian `u32` at `off`; total, like [`be16`].
#[inline]
pub(crate) fn be32(buf: &[u8], off: usize) -> u32 {
    match buf.get(off..off.saturating_add(4)) {
        Some(&[a, b, c, d]) => u32::from_be_bytes([a, b, c, d]),
        _ => 0,
    }
}

/// Write a big-endian `u16`. Total: out-of-range writes are dropped
/// (builders always size their buffers up front).
#[inline]
pub(crate) fn put_be16(buf: &mut [u8], off: usize, v: u16) {
    if let Some(dst) = buf.get_mut(off..off.saturating_add(2)) {
        dst.copy_from_slice(&v.to_be_bytes());
    }
}

/// Write a big-endian `u32`; total, like [`put_be16`].
#[inline]
pub(crate) fn put_be32(buf: &mut [u8], off: usize, v: u32) {
    if let Some(dst) = buf.get_mut(off..off.saturating_add(4)) {
        dst.copy_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_helpers_roundtrip() {
        let mut buf = [0u8; 8];
        put_be16(&mut buf, 1, 0xBEEF);
        put_be32(&mut buf, 3, 0xDEADBEEF);
        assert_eq!(be16(&buf, 1), 0xBEEF);
        assert_eq!(be32(&buf, 3), 0xDEADBEEF);
    }

    #[test]
    fn error_display() {
        assert_eq!(Error::Truncated.to_string(), "packet truncated");
        assert_eq!(Error::Malformed.to_string(), "packet malformed");
        assert_eq!(Error::Unsupported.to_string(), "protocol unsupported");
    }
}
