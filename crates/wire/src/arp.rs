//! ARP (IPv4-over-Ethernet) parsing and emission.
//!
//! ARP is one of the two dominant non-IP protocols in the LBNL traces
//! (paper Table 2: 5–27% of non-IP packets depending on dataset).

use crate::{be16, ethernet::MacAddr, ipv4, put_be16, Error, Result};

/// ARP packet length for Ethernet/IPv4 (fixed 28 bytes).
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// who-has (1).
    Request,
    /// is-at (2).
    Reply,
    /// Any other opcode.
    Other(u16),
}

impl Operation {
    /// Decode an opcode.
    pub fn from_u16(v: u16) -> Operation {
        match v {
            1 => Operation::Request,
            2 => Operation::Reply,
            x => Operation::Other(x),
        }
    }

    /// Encode to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            Operation::Request => 1,
            Operation::Reply => 2,
            Operation::Other(x) => x,
        }
    }
}

/// A parsed Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Operation (request/reply).
    pub operation: Operation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: ipv4::Addr,
    /// Target hardware address.
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: ipv4::Addr,
}

impl Packet {
    /// Parse an ARP packet; only Ethernet/IPv4 ARP is supported.
    pub fn parse(buf: &[u8]) -> Result<Packet> {
        if buf.len() < PACKET_LEN {
            return Err(Error::Truncated);
        }
        if be16(buf, 0) != 1 || be16(buf, 2) != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(Error::Unsupported);
        }
        let mac = |off: usize| {
            let mut m = [0u8; 6];
            if let Some(src) = buf.get(off..off.saturating_add(6)) {
                m.copy_from_slice(src);
            }
            MacAddr(m)
        };
        Ok(Packet {
            operation: Operation::from_u16(be16(buf, 6)),
            sender_mac: mac(8),
            sender_ip: ipv4::Addr(crate::be32(buf, 14)),
            target_mac: mac(18),
            target_ip: ipv4::Addr(crate::be32(buf, 24)),
        })
    }

    /// Emit the 28-byte wire form.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PACKET_LEN];
        put_be16(&mut buf, 0, 1); // Ethernet
        put_be16(&mut buf, 2, 0x0800); // IPv4
        buf[4] = 6;
        buf[5] = 4;
        put_be16(&mut buf, 6, self.operation.to_u16());
        buf[8..14].copy_from_slice(&self.sender_mac.0);
        buf[14..18].copy_from_slice(&self.sender_ip.octets());
        buf[18..24].copy_from_slice(&self.target_mac.0);
        buf[24..28].copy_from_slice(&self.target_ip.octets());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Packet {
            operation: Operation::Request,
            sender_mac: MacAddr([1, 2, 3, 4, 5, 6]),
            sender_ip: ipv4::Addr::new(10, 0, 0, 1),
            target_mac: MacAddr([0; 6]),
            target_ip: ipv4::Addr::new(10, 0, 0, 2),
        };
        let buf = p.emit();
        assert_eq!(Packet::parse(&buf).unwrap(), p);
    }

    #[test]
    fn unsupported_hardware_type() {
        let mut buf = Packet {
            operation: Operation::Reply,
            sender_mac: MacAddr([0; 6]),
            sender_ip: ipv4::Addr::new(0, 0, 0, 0),
            target_mac: MacAddr([0; 6]),
            target_ip: ipv4::Addr::new(0, 0, 0, 0),
        }
        .emit();
        buf[1] = 6; // token ring
        assert_eq!(Packet::parse(&buf).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn truncated() {
        assert_eq!(Packet::parse(&[0u8; 27]).unwrap_err(), Error::Truncated);
    }
}
