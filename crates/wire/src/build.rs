//! Convenience builders assembling complete Ethernet frames.
//!
//! Used by the trace generator (`ent-gen`) and by tests; the analysis side
//! never constructs frames.

use crate::{ethernet, icmp, ipv4, tcp, udp};

/// Parameters for a TCP frame.
#[derive(Debug, Clone, Copy)]
pub struct TcpFrameSpec {
    /// Source MAC.
    pub src_mac: ethernet::MacAddr,
    /// Destination MAC.
    pub dst_mac: ethernet::MacAddr,
    /// Source IP.
    pub src_ip: ipv4::Addr,
    /// Destination IP.
    pub dst_ip: ipv4::Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: tcp::Flags,
    /// Receive window.
    pub window: u16,
    /// IP TTL.
    pub ttl: u8,
}

/// Build a complete TCP/IPv4/Ethernet frame.
pub fn tcp_frame(spec: &TcpFrameSpec, payload: &[u8]) -> Vec<u8> {
    let seg = tcp::emit(
        spec.src_ip,
        spec.dst_ip,
        spec.src_port,
        spec.dst_port,
        spec.seq,
        spec.ack,
        spec.flags,
        spec.window,
        payload,
    );
    let ip = ipv4::emit(
        spec.src_ip,
        spec.dst_ip,
        ipv4::Protocol::Tcp,
        spec.ttl,
        ip_ident(spec.seq, spec.src_port),
        &seg,
    );
    ethernet::emit(spec.dst_mac, spec.src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Parameters for a UDP frame.
#[derive(Debug, Clone, Copy)]
pub struct UdpFrameSpec {
    /// Source MAC.
    pub src_mac: ethernet::MacAddr,
    /// Destination MAC.
    pub dst_mac: ethernet::MacAddr,
    /// Source IP.
    pub src_ip: ipv4::Addr,
    /// Destination IP.
    pub dst_ip: ipv4::Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP TTL.
    pub ttl: u8,
}

/// Build a complete UDP/IPv4/Ethernet frame.
pub fn udp_frame(spec: &UdpFrameSpec, payload: &[u8]) -> Vec<u8> {
    let dg = udp::emit(spec.src_ip, spec.dst_ip, spec.src_port, spec.dst_port, payload);
    let ip = ipv4::emit(
        spec.src_ip,
        spec.dst_ip,
        ipv4::Protocol::Udp,
        spec.ttl,
        ip_ident(payload.len() as u32, spec.src_port),
        &dg,
    );
    ethernet::emit(spec.dst_mac, spec.src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Build a complete ICMP/IPv4/Ethernet frame.
#[allow(clippy::too_many_arguments)]
pub fn icmp_frame(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    mtype: icmp::MessageType,
    ident: u16,
    seq: u16,
    payload: &[u8],
) -> Vec<u8> {
    let msg = icmp::emit(mtype, 0, ident, seq, payload);
    let ip = ipv4::emit(src_ip, dst_ip, ipv4::Protocol::Icmp, 64, ip_ident(seq as u32, ident), &msg);
    ethernet::emit(dst_mac, src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Build an IPv4 frame carrying an arbitrary transport protocol (IGMP, ESP,
/// PIM, GRE, protocol 224, ...).
pub fn raw_ip_frame(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    protocol: u8,
    payload: &[u8],
) -> Vec<u8> {
    let ip = ipv4::emit(
        src_ip,
        dst_ip,
        ipv4::Protocol::from_u8(protocol),
        64,
        0,
        payload,
    );
    ethernet::emit(dst_mac, src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Deterministic-but-varying IP ident derived from flow state, so duplicate
/// frames (retransmissions) can carry identical idents while distinct
/// datagrams differ.
fn ip_ident(a: u32, b: u16) -> u16 {
    (a.wrapping_mul(0x9E37).wrapping_add(b as u32) & 0xFFFF) as u16
}

// ---------------------------------------------------------------------------
// Zero-copy template builders.
//
// The legacy builders above assemble each frame from three nested `Vec`s
// (transport, IP, Ethernet) and re-checksum every byte from scratch. The
// template forms below precompute everything that is constant for one
// session — the full 54-/42-byte header image and the static portion of the
// ones-complement sums — so per-packet work reduces to: copy the header
// image, patch the few dynamic fields, finish the checksums incrementally,
// and append header + payload to a caller-provided buffer. Byte output is
// identical to the legacy builders (pinned by the equivalence tests below).
// ---------------------------------------------------------------------------

/// Ethernet + IPv4 header bytes preceding the transport header.
pub const NET_HDR_LEN: usize = 34;
/// Full header image length for a TCP frame (Ethernet + IPv4 + TCP).
pub const TCP_HDR_LEN: usize = 54;
/// Full header image length for a UDP frame (Ethernet + IPv4 + UDP).
pub const UDP_HDR_LEN: usize = 42;
/// Full header image length for an ICMP frame (Ethernet + IPv4 + ICMP).
pub const ICMP_HDR_LEN: usize = 42;

/// Raw ones-complement word sum of `data` (big-endian 16-bit words, odd
/// trailing byte zero-padded), carries unfolded.
fn word_sum(data: &[u8]) -> u32 {
    let mut s = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        s += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        s += u16::from_be_bytes([*last, 0]) as u32;
    }
    s
}

/// Fold carries and complement: turns a [`word_sum`] into the wire checksum
/// value (same folding as [`crate::checksum::Checksum::finish`]).
fn fold_sum(mut s: u32) -> u16 {
    while s > 0xFFFF {
        s = (s & 0xFFFF) + (s >> 16);
    }
    !(s as u16)
}

/// Shared Ethernet + IPv4 header prefix of a template: MACs, EtherType,
/// version/IHL, TTL, protocol and addresses filled in; total-length, ident
/// and header checksum left zero for per-packet patching.
fn net_prefix(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    ttl: u8,
    protocol: u8,
) -> [u8; NET_HDR_LEN] {
    let mut hdr = [0u8; NET_HDR_LEN];
    hdr[0..6].copy_from_slice(&dst_mac.0);
    hdr[6..12].copy_from_slice(&src_mac.0);
    crate::put_be16(&mut hdr, 12, ethernet::EtherType::Ipv4.to_u16());
    hdr[14] = 0x45; // version 4, IHL 5
    hdr[22] = ttl;
    hdr[23] = protocol;
    hdr[26..30].copy_from_slice(&src_ip.octets());
    hdr[30..34].copy_from_slice(&dst_ip.octets());
    hdr
}

/// Per-session TCP frame template: the full 54-byte Ethernet/IPv4/TCP
/// header image plus the static halves of both checksums.
///
/// Built once per session from a [`TcpFrameSpec`] (whose `seq`/`ack`/`flags`
/// are ignored — they are per-packet); [`tcp_frame_into`] then emits each
/// frame by patching seq, ack, flags, lengths, ident and checksums.
#[derive(Debug, Clone, Copy)]
pub struct TcpTemplate {
    /// Header image; dynamic fields zero.
    hdr: [u8; TCP_HDR_LEN],
    /// Word sum of the IPv4 header minus total-length and ident.
    ip_static: u32,
    /// Word sum of pseudo-header addresses + protocol + static TCP fields.
    tcp_static: u32,
    /// Source port, the per-session half of the IP ident derivation.
    src_port: u16,
}

impl TcpTemplate {
    /// Precompute the template for one session's direction.
    pub fn new(spec: &TcpFrameSpec) -> TcpTemplate {
        let mut hdr = [0u8; TCP_HDR_LEN];
        hdr[0..NET_HDR_LEN].copy_from_slice(&net_prefix(
            spec.src_mac,
            spec.dst_mac,
            spec.src_ip,
            spec.dst_ip,
            spec.ttl,
            ipv4::Protocol::Tcp.to_u8(),
        ));
        crate::put_be16(&mut hdr, 34, spec.src_port);
        crate::put_be16(&mut hdr, 36, spec.dst_port);
        hdr[46] = 5 << 4; // data offset 5 words
        crate::put_be16(&mut hdr, 48, spec.window);
        // Dynamic IP fields (total length, ident, checksum) are zero in the
        // image, so summing the whole IP header yields the static part.
        let ip_static = word_sum(&hdr[14..34]);
        // Pseudo-header addresses + protocol, plus the TCP header with
        // seq/ack/flags/checksum zeroed; the pseudo-header length, seq, ack
        // and flags are added per packet.
        let tcp_static =
            word_sum(&hdr[26..34]) + ipv4::Protocol::Tcp.to_u8() as u32 + word_sum(&hdr[34..54]);
        TcpTemplate {
            hdr,
            ip_static,
            tcp_static,
            src_port: spec.src_port,
        }
    }
}

/// Append one TCP frame built from `t` to `out`.
///
/// Byte-identical to [`tcp_frame`] with the same dynamic fields: the header
/// image is copied, seq/ack/flags/lengths/ident patched, and both checksums
/// finished incrementally from the template's static sums.
pub fn tcp_frame_into(
    t: &TcpTemplate,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    tcp_frame_split_into(t, seq, ack, flags, SplitPayload::contiguous(payload), out);
}

/// A logical payload expressed as a literal head followed by a run of one
/// fill byte: `head ∥ [fill; fill_len]`.
///
/// The enterprise generator's large objects (HTTP bodies, NFS reads, SMB
/// writes, TLS application data) are a short protocol head followed by a
/// constant filler. Materialising that filler just to checksum and copy it
/// dominated `gen_synth`; the split form lets the frame writers compute the
/// fill's ones-complement contribution in O(1) and emit it with a single
/// `resize` (memset) instead of a build-sum-copy triple pass.
#[derive(Debug, Clone, Copy)]
pub struct SplitPayload<'a> {
    /// Literal leading bytes.
    pub head: &'a [u8],
    /// Byte value repeated after the head.
    pub fill: u8,
    /// Number of fill bytes.
    pub fill_len: usize,
}

impl<'a> SplitPayload<'a> {
    /// A fully-literal payload (no fill run).
    pub fn contiguous(head: &'a [u8]) -> SplitPayload<'a> {
        SplitPayload { head, fill: 0, fill_len: 0 }
    }

    /// Logical payload length.
    pub fn len(&self) -> usize {
        self.head.len() + self.fill_len
    }

    /// True when the logical payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`word_sum`] of the logical byte sequence. An odd-length head pairs
    /// its last byte with the first fill byte, so the straddling word is
    /// accounted for explicitly; the rest of the run is a closed form.
    fn sum(&self) -> u32 {
        let mut s = word_sum(self.head);
        let mut n = self.fill_len;
        if self.head.len() % 2 == 1 && n > 0 {
            // word_sum(head) already added `last << 8`; the concatenated
            // word is `last << 8 | fill`, so only the low byte is missing.
            s += self.fill as u32;
            n -= 1;
        }
        let word = ((self.fill as u32) << 8) | self.fill as u32;
        s += (n / 2) as u32 * word;
        if n % 2 == 1 {
            s += (self.fill as u32) << 8;
        }
        s
    }

    /// Append the logical bytes to `out` (head copy + one memset).
    fn write_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.head);
        out.resize(out.len() + self.fill_len, self.fill);
    }
}

/// Append one TCP frame with a split payload to `out`; byte-identical to
/// [`tcp_frame_into`] over the concatenated payload.
pub fn tcp_frame_split_into(
    t: &TcpTemplate,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
    payload: SplitPayload<'_>,
    out: &mut Vec<u8>,
) {
    let mut hdr = t.hdr;
    let total = (TCP_HDR_LEN - 14 + payload.len()) as u16;
    let ident = ip_ident(seq, t.src_port);
    crate::put_be16(&mut hdr, 16, total);
    crate::put_be16(&mut hdr, 18, ident);
    crate::put_be16(
        &mut hdr,
        24,
        fold_sum(t.ip_static + total as u32 + ident as u32),
    );
    crate::put_be32(&mut hdr, 38, seq);
    crate::put_be32(&mut hdr, 42, ack);
    hdr[47] = flags.0;
    let seg_len = (TCP_HDR_LEN - NET_HDR_LEN + payload.len()) as u32;
    let sum = t.tcp_static
        + seg_len
        + (seq >> 16)
        + (seq & 0xFFFF)
        + (ack >> 16)
        + (ack & 0xFFFF)
        + flags.0 as u32
        + payload.sum();
    crate::put_be16(&mut hdr, 50, fold_sum(sum));
    out.extend_from_slice(&hdr);
    payload.write_into(out);
}

/// Append one UDP frame with a split payload to `out`; byte-identical to
/// [`udp_frame_into`] over the concatenated payload.
pub fn udp_frame_split_into(t: &UdpTemplate, payload: SplitPayload<'_>, out: &mut Vec<u8>) {
    let mut hdr = t.hdr;
    let total = (UDP_HDR_LEN - 14 + payload.len()) as u16;
    let dg_len = (UDP_HDR_LEN - NET_HDR_LEN + payload.len()) as u16;
    let ident = ip_ident(payload.len() as u32, t.src_port);
    crate::put_be16(&mut hdr, 16, total);
    crate::put_be16(&mut hdr, 18, ident);
    crate::put_be16(
        &mut hdr,
        24,
        fold_sum(t.ip_static + total as u32 + ident as u32),
    );
    crate::put_be16(&mut hdr, 38, dg_len);
    // The datagram length enters the sum twice: once in the pseudo-header,
    // once as the UDP length field itself.
    let ck = fold_sum(t.udp_static + 2 * dg_len as u32 + payload.sum());
    // Per RFC 768 a computed checksum of zero is transmitted as all-ones.
    crate::put_be16(&mut hdr, 40, if ck == 0 { 0xFFFF } else { ck });
    out.extend_from_slice(&hdr);
    payload.write_into(out);
}

/// Per-session UDP frame template (see [`TcpTemplate`]).
#[derive(Debug, Clone, Copy)]
pub struct UdpTemplate {
    /// Header image; dynamic fields zero.
    hdr: [u8; UDP_HDR_LEN],
    /// Word sum of the IPv4 header minus total-length and ident.
    ip_static: u32,
    /// Word sum of pseudo-header addresses + protocol + ports.
    udp_static: u32,
    /// Source port, the per-session half of the IP ident derivation.
    src_port: u16,
}

impl UdpTemplate {
    /// Precompute the template for one flow's direction.
    pub fn new(spec: &UdpFrameSpec) -> UdpTemplate {
        let mut hdr = [0u8; UDP_HDR_LEN];
        hdr[0..NET_HDR_LEN].copy_from_slice(&net_prefix(
            spec.src_mac,
            spec.dst_mac,
            spec.src_ip,
            spec.dst_ip,
            spec.ttl,
            ipv4::Protocol::Udp.to_u8(),
        ));
        crate::put_be16(&mut hdr, 34, spec.src_port);
        crate::put_be16(&mut hdr, 36, spec.dst_port);
        let ip_static = word_sum(&hdr[14..34]);
        let udp_static =
            word_sum(&hdr[26..34]) + ipv4::Protocol::Udp.to_u8() as u32 + word_sum(&hdr[34..42]);
        UdpTemplate {
            hdr,
            ip_static,
            udp_static,
            src_port: spec.src_port,
        }
    }
}

/// Append one UDP frame built from `t` to `out`; byte-identical to
/// [`udp_frame`] for the same payload.
pub fn udp_frame_into(t: &UdpTemplate, payload: &[u8], out: &mut Vec<u8>) {
    udp_frame_split_into(t, SplitPayload::contiguous(payload), out);
}

/// Append one ICMP frame to `out`; byte-identical to [`icmp_frame`].
///
/// ICMP echoes are too few per session to warrant a cached template, but
/// this form still avoids the legacy builder's three nested allocations.
#[allow(clippy::too_many_arguments)]
pub fn icmp_frame_into(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    mtype: icmp::MessageType,
    ident: u16,
    seq: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let mut hdr = net_icmp_header(src_mac, dst_mac, src_ip, dst_ip, mtype, ident, seq, payload);
    let ck = fold_sum(word_sum(&hdr[34..42]) + word_sum(payload));
    crate::put_be16(&mut hdr, 36, ck);
    out.extend_from_slice(&hdr);
    out.extend_from_slice(payload);
}

/// ICMP header image with the message checksum still zero.
#[allow(clippy::too_many_arguments)]
fn net_icmp_header(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    mtype: icmp::MessageType,
    ident: u16,
    seq: u16,
    payload: &[u8],
) -> [u8; ICMP_HDR_LEN] {
    let mut hdr = [0u8; ICMP_HDR_LEN];
    hdr[0..NET_HDR_LEN].copy_from_slice(&net_prefix(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        64,
        ipv4::Protocol::Icmp.to_u8(),
    ));
    let total = (ICMP_HDR_LEN - 14 + payload.len()) as u16;
    crate::put_be16(&mut hdr, 16, total);
    crate::put_be16(&mut hdr, 18, ip_ident(seq as u32, ident));
    let ip_ck = fold_sum(word_sum(&hdr[14..34]));
    crate::put_be16(&mut hdr, 24, ip_ck);
    hdr[34] = mtype.to_u8();
    crate::put_be16(&mut hdr, 38, ident);
    crate::put_be16(&mut hdr, 40, seq);
    hdr
}

/// Append one raw-IPv4 frame (arbitrary transport protocol) to `out`;
/// byte-identical to [`raw_ip_frame`].
pub fn raw_ip_frame_into(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    protocol: u8,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let mut hdr = net_prefix(src_mac, dst_mac, src_ip, dst_ip, 64, protocol);
    let total = (NET_HDR_LEN - 14 + payload.len()) as u16;
    crate::put_be16(&mut hdr, 16, total);
    let ip_ck = fold_sum(word_sum(&hdr[14..34]));
    crate::put_be16(&mut hdr, 24, ip_ck);
    out.extend_from_slice(&hdr);
    out.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    fn macs() -> (ethernet::MacAddr, ethernet::MacAddr) {
        (ethernet::MacAddr::from_host_id(1), ethernet::MacAddr::from_host_id(2))
    }

    #[test]
    fn icmp_frame_parses() {
        let (s, d) = macs();
        let f = icmp_frame(
            s,
            d,
            ipv4::Addr::new(10, 0, 0, 1),
            ipv4::Addr::new(10, 0, 0, 2),
            icmp::MessageType::EchoRequest,
            7,
            1,
            b"ping",
        );
        let p = Packet::parse(&f).unwrap();
        assert!(matches!(
            p.transport,
            crate::Transport::Icmp { mtype: icmp::MessageType::EchoRequest, ident: 7, seq: 1, .. }
        ));
    }

    #[test]
    fn raw_ip_frame_parses_as_other() {
        let (s, d) = macs();
        let f = raw_ip_frame(
            s,
            d,
            ipv4::Addr::new(10, 0, 0, 1),
            ipv4::Addr::new(224, 0, 0, 13),
            103,
            &[0u8; 16],
        );
        let p = Packet::parse(&f).unwrap();
        assert_eq!(p.transport, crate::Transport::Other(103));
        assert!(p.is_multicast());
    }

    /// Tiny deterministic generator (xorshift64*) so the equivalence
    /// property runs without a rand dependency.
    struct X(u64);
    impl X {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    fn random_payload(x: &mut X, len: usize) -> Vec<u8> {
        (0..len).map(|_| x.next_u64() as u8).collect()
    }

    /// Payload lengths covering the interesting cases: empty, single byte,
    /// odd (checksum pad), exact MSS-sized, and a few random in between.
    fn payload_lens(x: &mut X) -> Vec<usize> {
        let mut lens = vec![0, 1, 3, 57, 536, 1446];
        for _ in 0..4 {
            lens.push(x.below(1446) as usize);
        }
        lens
    }

    #[test]
    fn tcp_template_matches_legacy_builder() {
        let mut x = X(0xDEAD_BEEF_1234_5678);
        for round in 0..50u64 {
            let spec = TcpFrameSpec {
                src_mac: ethernet::MacAddr::from_host_id(x.next_u64() as u32),
                dst_mac: ethernet::MacAddr::from_host_id(x.next_u64() as u32),
                src_ip: ipv4::Addr(x.next_u64() as u32),
                dst_ip: ipv4::Addr(x.next_u64() as u32),
                src_port: x.next_u64() as u16,
                dst_port: x.next_u64() as u16,
                seq: 0,
                ack: 0,
                flags: tcp::Flags::NONE,
                window: x.next_u64() as u16,
                ttl: if round % 2 == 0 { 64 } else { 52 },
            };
            let tmpl = TcpTemplate::new(&spec);
            for len in payload_lens(&mut x) {
                let payload = random_payload(&mut x, len);
                // Exercise carry-heavy checksums too: all-0xFF payloads and
                // extreme seq/ack values stress the incremental fold.
                let seq = if len % 3 == 0 { u32::MAX } else { x.next_u64() as u32 };
                let ack = x.next_u64() as u32;
                let flags = tcp::Flags((x.next_u64() as u8) & 0x1F);
                let legacy = tcp_frame(&TcpFrameSpec { seq, ack, flags, ..spec }, &payload);
                let mut got = Vec::new();
                tcp_frame_into(&tmpl, seq, ack, flags, &payload, &mut got);
                assert_eq!(got, legacy, "tcp template mismatch (len {len})");
            }
            // Saturated payload: every word 0xFFFF, maximal carry folding.
            let payload = vec![0xFFu8; 97];
            let legacy = tcp_frame(
                &TcpFrameSpec { seq: u32::MAX, ack: u32::MAX, flags: tcp::Flags::ACK, ..spec },
                &payload,
            );
            let mut got = Vec::new();
            tcp_frame_into(&tmpl, u32::MAX, u32::MAX, tcp::Flags::ACK, &payload, &mut got);
            assert_eq!(got, legacy, "tcp template mismatch (saturated)");
        }
    }

    #[test]
    fn udp_template_matches_legacy_builder() {
        let mut x = X(0x0123_4567_89AB_CDEF);
        for _ in 0..50u64 {
            let spec = UdpFrameSpec {
                src_mac: ethernet::MacAddr::from_host_id(x.next_u64() as u32),
                dst_mac: ethernet::MacAddr::from_host_id(x.next_u64() as u32),
                src_ip: ipv4::Addr(x.next_u64() as u32),
                dst_ip: ipv4::Addr(x.next_u64() as u32),
                src_port: x.next_u64() as u16,
                dst_port: x.next_u64() as u16,
                ttl: 64,
            };
            let tmpl = UdpTemplate::new(&spec);
            for len in payload_lens(&mut x) {
                let payload = random_payload(&mut x, len);
                let legacy = udp_frame(&spec, &payload);
                let mut got = Vec::new();
                udp_frame_into(&tmpl, &payload, &mut got);
                assert_eq!(got, legacy, "udp template mismatch (len {len})");
            }
        }
    }

    #[test]
    fn icmp_and_raw_into_match_legacy_builders() {
        let mut x = X(0xFACE_CAFE_0BAD_F00D);
        for _ in 0..100u64 {
            let (sm, dm) = (
                ethernet::MacAddr::from_host_id(x.next_u64() as u32),
                ethernet::MacAddr::from_host_id(x.next_u64() as u32),
            );
            let (si, di) = (ipv4::Addr(x.next_u64() as u32), ipv4::Addr(x.next_u64() as u32));
            let (ident, seq) = (x.next_u64() as u16, x.next_u64() as u16);
            let mtype = if seq % 2 == 0 {
                icmp::MessageType::EchoRequest
            } else {
                icmp::MessageType::EchoReply
            };
            let plen = x.below(120) as usize;
            let payload = random_payload(&mut x, plen);
            let legacy = icmp_frame(sm, dm, si, di, mtype, ident, seq, &payload);
            let mut got = Vec::new();
            icmp_frame_into(sm, dm, si, di, mtype, ident, seq, &payload, &mut got);
            assert_eq!(got, legacy, "icmp mismatch");

            let proto = x.next_u64() as u8;
            let legacy = raw_ip_frame(sm, dm, si, di, proto, &payload);
            let mut got = Vec::new();
            raw_ip_frame_into(sm, dm, si, di, proto, &payload, &mut got);
            assert_eq!(got, legacy, "raw ip mismatch (proto {proto})");
        }
    }

    #[test]
    fn split_payload_matches_concatenated_form() {
        // Every head-parity × fill-parity combination, plus carry-heavy
        // fills, must checksum and serialise exactly like the materialised
        // concatenation.
        let mut x = X(0x5EED_0F00_1234_ABCD);
        let tspec = TcpFrameSpec {
            src_mac: ethernet::MacAddr::from_host_id(3),
            dst_mac: ethernet::MacAddr::from_host_id(4),
            src_ip: ipv4::Addr::new(10, 1, 2, 3),
            dst_ip: ipv4::Addr::new(192, 168, 9, 7),
            src_port: 40123,
            dst_port: 80,
            seq: 0,
            ack: 0,
            flags: tcp::Flags::NONE,
            window: 8192,
            ttl: 64,
        };
        let uspec = UdpFrameSpec {
            src_mac: tspec.src_mac,
            dst_mac: tspec.dst_mac,
            src_ip: tspec.src_ip,
            dst_ip: tspec.dst_ip,
            src_port: 2049,
            dst_port: 997,
            ttl: 64,
        };
        let tt = TcpTemplate::new(&tspec);
        let ut = UdpTemplate::new(&uspec);
        let heads: [&[u8]; 5] = [b"", b"X", b"HTTP/1.1 200 OK\r\n", b"ab", b"odd"];
        let fills = [0u8, b'x', 0xFF, 0x4E];
        let fill_lens = [0usize, 1, 2, 3, 57, 536, 1400];
        for head in heads {
            for &fill in &fills {
                for &fill_len in &fill_lens {
                    let split = SplitPayload { head, fill, fill_len };
                    let mut concat = head.to_vec();
                    concat.resize(head.len() + fill_len, fill);
                    let seq = x.next_u64() as u32;
                    let ack = x.next_u64() as u32;

                    let mut want = Vec::new();
                    tcp_frame_into(&tt, seq, ack, tcp::Flags::ACK, &concat, &mut want);
                    let mut got = Vec::new();
                    tcp_frame_split_into(&tt, seq, ack, tcp::Flags::ACK, split, &mut got);
                    assert_eq!(got, want, "tcp split mismatch head={head:?} fill={fill} n={fill_len}");

                    let mut want = Vec::new();
                    udp_frame_into(&ut, &concat, &mut want);
                    let mut got = Vec::new();
                    udp_frame_split_into(&ut, split, &mut got);
                    assert_eq!(got, want, "udp split mismatch head={head:?} fill={fill} n={fill_len}");
                }
            }
        }
    }

    #[test]
    fn frame_into_appends_after_existing_bytes() {
        // The into-forms append; earlier arena contents must be untouched.
        let spec = UdpFrameSpec {
            src_mac: ethernet::MacAddr::from_host_id(1),
            dst_mac: ethernet::MacAddr::from_host_id(2),
            src_ip: ipv4::Addr::new(10, 0, 0, 1),
            dst_ip: ipv4::Addr::new(10, 0, 0, 2),
            src_port: 1000,
            dst_port: 53,
            ttl: 64,
        };
        let mut out = vec![0xAA, 0xBB];
        udp_frame_into(&UdpTemplate::new(&spec), b"hi", &mut out);
        assert_eq!(&out[..2], &[0xAA, 0xBB]);
        assert_eq!(&out[2..], &udp_frame(&spec, b"hi")[..]);
    }

    #[test]
    fn retransmitted_tcp_frames_are_byte_identical() {
        let spec = TcpFrameSpec {
            src_mac: ethernet::MacAddr::from_host_id(1),
            dst_mac: ethernet::MacAddr::from_host_id(2),
            src_ip: ipv4::Addr::new(10, 0, 0, 1),
            dst_ip: ipv4::Addr::new(10, 0, 0, 2),
            src_port: 40000,
            dst_port: 80,
            seq: 1234,
            ack: 99,
            flags: tcp::Flags::ACK,
            window: 1000,
            ttl: 64,
        };
        assert_eq!(tcp_frame(&spec, b"data"), tcp_frame(&spec, b"data"));
    }
}
