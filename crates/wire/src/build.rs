//! Convenience builders assembling complete Ethernet frames.
//!
//! Used by the trace generator (`ent-gen`) and by tests; the analysis side
//! never constructs frames.

use crate::{ethernet, icmp, ipv4, tcp, udp};

/// Parameters for a TCP frame.
#[derive(Debug, Clone, Copy)]
pub struct TcpFrameSpec {
    /// Source MAC.
    pub src_mac: ethernet::MacAddr,
    /// Destination MAC.
    pub dst_mac: ethernet::MacAddr,
    /// Source IP.
    pub src_ip: ipv4::Addr,
    /// Destination IP.
    pub dst_ip: ipv4::Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: tcp::Flags,
    /// Receive window.
    pub window: u16,
    /// IP TTL.
    pub ttl: u8,
}

/// Build a complete TCP/IPv4/Ethernet frame.
pub fn tcp_frame(spec: &TcpFrameSpec, payload: &[u8]) -> Vec<u8> {
    let seg = tcp::emit(
        spec.src_ip,
        spec.dst_ip,
        spec.src_port,
        spec.dst_port,
        spec.seq,
        spec.ack,
        spec.flags,
        spec.window,
        payload,
    );
    let ip = ipv4::emit(
        spec.src_ip,
        spec.dst_ip,
        ipv4::Protocol::Tcp,
        spec.ttl,
        ip_ident(spec.seq, spec.src_port),
        &seg,
    );
    ethernet::emit(spec.dst_mac, spec.src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Parameters for a UDP frame.
#[derive(Debug, Clone, Copy)]
pub struct UdpFrameSpec {
    /// Source MAC.
    pub src_mac: ethernet::MacAddr,
    /// Destination MAC.
    pub dst_mac: ethernet::MacAddr,
    /// Source IP.
    pub src_ip: ipv4::Addr,
    /// Destination IP.
    pub dst_ip: ipv4::Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP TTL.
    pub ttl: u8,
}

/// Build a complete UDP/IPv4/Ethernet frame.
pub fn udp_frame(spec: &UdpFrameSpec, payload: &[u8]) -> Vec<u8> {
    let dg = udp::emit(spec.src_ip, spec.dst_ip, spec.src_port, spec.dst_port, payload);
    let ip = ipv4::emit(
        spec.src_ip,
        spec.dst_ip,
        ipv4::Protocol::Udp,
        spec.ttl,
        ip_ident(payload.len() as u32, spec.src_port),
        &dg,
    );
    ethernet::emit(spec.dst_mac, spec.src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Build a complete ICMP/IPv4/Ethernet frame.
#[allow(clippy::too_many_arguments)]
pub fn icmp_frame(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    mtype: icmp::MessageType,
    ident: u16,
    seq: u16,
    payload: &[u8],
) -> Vec<u8> {
    let msg = icmp::emit(mtype, 0, ident, seq, payload);
    let ip = ipv4::emit(src_ip, dst_ip, ipv4::Protocol::Icmp, 64, ip_ident(seq as u32, ident), &msg);
    ethernet::emit(dst_mac, src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Build an IPv4 frame carrying an arbitrary transport protocol (IGMP, ESP,
/// PIM, GRE, protocol 224, ...).
pub fn raw_ip_frame(
    src_mac: ethernet::MacAddr,
    dst_mac: ethernet::MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    protocol: u8,
    payload: &[u8],
) -> Vec<u8> {
    let ip = ipv4::emit(
        src_ip,
        dst_ip,
        ipv4::Protocol::from_u8(protocol),
        64,
        0,
        payload,
    );
    ethernet::emit(dst_mac, src_mac, ethernet::EtherType::Ipv4, &ip)
}

/// Deterministic-but-varying IP ident derived from flow state, so duplicate
/// frames (retransmissions) can carry identical idents while distinct
/// datagrams differ.
fn ip_ident(a: u32, b: u16) -> u16 {
    (a.wrapping_mul(0x9E37).wrapping_add(b as u32) & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    fn macs() -> (ethernet::MacAddr, ethernet::MacAddr) {
        (ethernet::MacAddr::from_host_id(1), ethernet::MacAddr::from_host_id(2))
    }

    #[test]
    fn icmp_frame_parses() {
        let (s, d) = macs();
        let f = icmp_frame(
            s,
            d,
            ipv4::Addr::new(10, 0, 0, 1),
            ipv4::Addr::new(10, 0, 0, 2),
            icmp::MessageType::EchoRequest,
            7,
            1,
            b"ping",
        );
        let p = Packet::parse(&f).unwrap();
        assert!(matches!(
            p.transport,
            crate::Transport::Icmp { mtype: icmp::MessageType::EchoRequest, ident: 7, seq: 1, .. }
        ));
    }

    #[test]
    fn raw_ip_frame_parses_as_other() {
        let (s, d) = macs();
        let f = raw_ip_frame(
            s,
            d,
            ipv4::Addr::new(10, 0, 0, 1),
            ipv4::Addr::new(224, 0, 0, 13),
            103,
            &[0u8; 16],
        );
        let p = Packet::parse(&f).unwrap();
        assert_eq!(p.transport, crate::Transport::Other(103));
        assert!(p.is_multicast());
    }

    #[test]
    fn retransmitted_tcp_frames_are_byte_identical() {
        let spec = TcpFrameSpec {
            src_mac: ethernet::MacAddr::from_host_id(1),
            dst_mac: ethernet::MacAddr::from_host_id(2),
            src_ip: ipv4::Addr::new(10, 0, 0, 1),
            dst_ip: ipv4::Addr::new(10, 0, 0, 2),
            src_port: 40000,
            dst_port: 80,
            seq: 1234,
            ack: 99,
            flags: tcp::Flags::ACK,
            window: 1000,
            ttl: 64,
        };
        assert_eq!(tcp_frame(&spec, b"data"), tcp_frame(&spec, b"data"));
    }
}
