//! UDP datagram parsing and emission.

use crate::{be16, checksum, ipv4, put_be16, Error, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP datagram with its (possibly truncated) payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Datagram<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length field from the header (header + payload, authoritative even
    /// under snaplen truncation).
    pub length: u16,
    /// Captured payload bytes.
    pub payload: &'a [u8],
}

impl<'a> Datagram<'a> {
    /// Parse a UDP header, tolerating payload truncation.
    #[inline]
    pub fn parse(buf: &'a [u8]) -> Result<Datagram<'a>> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let length = be16(buf, 4);
        if (length as usize) < HEADER_LEN {
            return Err(Error::Malformed);
        }
        let end = core::cmp::min(buf.len(), length as usize);
        Ok(Datagram {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            length,
            payload: buf.get(HEADER_LEN..core::cmp::max(HEADER_LEN, end)).unwrap_or(&[]),
        })
    }

    /// On-the-wire payload length implied by the header.
    pub fn wire_payload_len(&self) -> usize {
        self.length as usize - HEADER_LEN
    }
}

/// Emit a UDP datagram, checksummed against the IPv4 pseudo-header.
pub fn emit(
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    put_be16(&mut buf, 0, src_port);
    put_be16(&mut buf, 2, dst_port);
    put_be16(&mut buf, 4, (HEADER_LEN + payload.len()) as u16);
    buf[HEADER_LEN..].copy_from_slice(payload);
    let ck = checksum::transport(src_ip, dst_ip, 17, &buf);
    // Per RFC 768 a computed checksum of zero is transmitted as all-ones.
    put_be16(&mut buf, 6, if ck == 0 { 0xFFFF } else { ck });
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = emit(
            ipv4::Addr::new(10, 0, 0, 1),
            ipv4::Addr::new(10, 0, 0, 53),
            5353,
            53,
            b"query",
        );
        let p = Datagram::parse(&d).unwrap();
        assert_eq!(p.src_port, 5353);
        assert_eq!(p.dst_port, 53);
        assert_eq!(p.payload, b"query");
        assert_eq!(p.wire_payload_len(), 5);
    }

    #[test]
    fn truncation_keeps_wire_length() {
        let d = emit(
            ipv4::Addr::new(1, 1, 1, 1),
            ipv4::Addr::new(2, 2, 2, 2),
            1,
            2,
            &[0u8; 200],
        );
        let p = Datagram::parse(&d[..50]).unwrap();
        assert_eq!(p.payload.len(), 42);
        assert_eq!(p.wire_payload_len(), 200);
    }

    #[test]
    fn malformed_length() {
        let mut d = emit(
            ipv4::Addr::new(1, 1, 1, 1),
            ipv4::Addr::new(2, 2, 2, 2),
            1,
            2,
            b"x",
        );
        d[4] = 0;
        d[5] = 4; // length < 8
        assert_eq!(Datagram::parse(&d).unwrap_err(), Error::Malformed);
        assert_eq!(Datagram::parse(&d[..7]).unwrap_err(), Error::Truncated);
    }
}
