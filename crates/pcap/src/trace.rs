//! Traces: the unit of capture and analysis.
//!
//! In the paper each *trace* is one monitoring period of one subnet's router
//! port (10 minutes in D0, 1 hour in D1–D4), and each *dataset* is the
//! collection of traces across 18–22 subnets. Per-trace analyses (the
//! utilization and retransmission figures, §6) operate on [`Trace`]; dataset
//! analyses aggregate across them.

use crate::{PcapReader, PcapWriter, Result, TimedPacket};
use ent_wire::Timestamp;
use std::io::{Read, Write};
use std::sync::Arc;

/// Metadata describing one monitored-subnet trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Dataset label ("D0".."D4"), interned: cloning the metadata (or
    /// stamping the label into per-trace analyses) bumps a refcount
    /// instead of copying the string.
    pub dataset: Arc<str>,
    /// Index of the monitored subnet within the site.
    pub subnet: u16,
    /// Which monitoring pass over this subnet this is (the paper's
    /// "per tap" column: D1 and parts of D4 monitored each subnet twice).
    pub pass: u8,
    /// Nominal duration of the monitoring period.
    pub duration: Timestamp,
    /// Snaplen in force during capture.
    pub snaplen: u32,
    /// Nominal link capacity of the monitored port, bits per second
    /// (100 Mb/s for the LBNL subnets).
    pub link_capacity_bps: u64,
}

impl TraceMeta {
    /// True if application payloads were captured (full snaplen), i.e. the
    /// trace is usable for payload analyses. The paper omits D1/D2
    /// (snaplen 68) from all application-layer message parsing.
    pub fn has_payload(&self) -> bool {
        self.snaplen >= 1500
    }
}

/// A captured trace: metadata plus timestamp-ordered packets.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Capture metadata.
    pub meta: TraceMeta,
    /// Packets in timestamp order.
    pub packets: Vec<TimedPacket>,
}

impl Trace {
    /// Total captured bytes (sum of captured frame lengths).
    pub fn captured_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.frame.len() as u64).sum()
    }

    /// Total on-the-wire bytes (sum of original frame lengths).
    pub fn wire_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.orig_len as u64).sum()
    }

    /// Write the packets as a pcap stream.
    pub fn write_pcap<W: Write>(&self, out: W) -> Result<()> {
        let mut w = PcapWriter::new(out, self.meta.snaplen)?;
        for p in &self.packets {
            w.write_packet(p)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Read packets from a pcap stream, attaching the given metadata
    /// (which is not stored in the pcap format itself). The file snaplen
    /// overrides `meta.snaplen`.
    pub fn read_pcap<R: Read>(input: R, mut meta: TraceMeta) -> Result<Trace> {
        let mut r = PcapReader::new(input)?;
        meta.snaplen = r.snaplen();
        let packets = r.read_all()?;
        Ok(Trace { meta, packets })
    }

    /// Read a possibly damaged capture buffer, salvaging every readable
    /// record and reporting the damage tally alongside the trace. Only an
    /// unrecoverable global header (bad magic, unsupported link type,
    /// file shorter than 24 bytes) is an error.
    pub fn read_pcap_recovering(
        data: &[u8],
        mut meta: TraceMeta,
    ) -> Result<(Trace, crate::IngestStats)> {
        let r = crate::RecoveringReader::new(data)?;
        meta.snaplen = r.snaplen();
        let (packets, stats) = r.read_all();
        Ok((Trace { meta, packets }, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            dataset: "D0".into(),
            subnet: 3,
            pass: 1,
            duration: Timestamp::from_secs(600),
            snaplen: 1500,
            link_capacity_bps: 100_000_000,
        }
    }

    #[test]
    fn pcap_roundtrip_preserves_packets() {
        let t = Trace {
            meta: meta(),
            packets: (0..20)
                .map(|i| TimedPacket::new(Timestamp::from_micros(i * 100), vec![i as u8; 64]))
                .collect(),
        };
        let mut buf = Vec::new();
        t.write_pcap(&mut buf).unwrap();
        let back = Trace::read_pcap(&buf[..], meta()).unwrap();
        assert_eq!(back.packets, t.packets);
        assert_eq!(back.meta.snaplen, 1500);
        assert_eq!(back.wire_bytes(), 20 * 64);
        assert_eq!(back.captured_bytes(), 20 * 64);
    }

    #[test]
    fn payload_capability() {
        let mut m = meta();
        assert!(m.has_payload());
        m.snaplen = 68;
        assert!(!m.has_payload());
    }
}
