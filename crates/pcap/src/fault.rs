//! Deterministic fault injection for capture files.
//!
//! The robustness tests need capture files damaged in the ways real ones
//! are: disks fill mid-record, NIC clocks run backwards, crashed capture
//! hosts leave garbage runs, buggy writers emit impossible lengths. A
//! [`FaultInjector`] applies each [`Fault`] mode to a well-formed pcap
//! byte buffer at a seeded-random location, so a corrupted-file corpus is
//! fully reproducible from `(seed, fault list)`.
//!
//! Faults operate on the *serialized* little-endian file our
//! [`PcapWriter`](crate::PcapWriter) produces — damage is byte-level, the
//! same thing a torn write or bit rot produces, not a structured mutation
//! of in-memory packets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One way a capture file can be damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Cut the file off mid-record (header or payload), as when a capture
    /// disk fills.
    TruncateTail,
    /// Corrupt the global-header magic: the file is no longer recognizably
    /// a capture (fatal, by design).
    BadMagic,
    /// Rewrite the global-header snaplen to `u32::MAX`, the allocation-
    /// attack shape.
    AbsurdSnaplen,
    /// Rewrite one record's caplen to zero and drop its payload bytes.
    ZeroCaplen,
    /// Rewrite one record's caplen to an absurd (> 1 GiB) value.
    AbsurdCaplen,
    /// Rewrite one record's orig_len below its caplen.
    CaplenExceedsOrig,
    /// Overwrite one record's entire 16-byte header with garbage.
    GarbageRecordHeader,
    /// Push one record's timestamp behind its predecessor's.
    TimestampRegression,
    /// Duplicate one record (header + payload) in place.
    DuplicateRecord,
    /// Swap two adjacent records' bytes.
    ReorderRecords,
    /// Insert a run of random bytes at a record boundary.
    InsertGarbage,
    /// Flip a few random bits inside one record's payload.
    FlipPayloadBits,
    /// Cut a checkpoint file off at a random point, as when a monitor host
    /// loses power mid-write (torn write without the atomic rename).
    TruncateCheckpoint,
    /// Flip random bytes inside a checkpoint's payload, past the header
    /// magic — bit rot the checksum must catch.
    CorruptCheckpoint,
}

impl Fault {
    /// Every fault mode, for corpus sweeps.
    pub const ALL: [Fault; 12] = [
        Fault::TruncateTail,
        Fault::BadMagic,
        Fault::AbsurdSnaplen,
        Fault::ZeroCaplen,
        Fault::AbsurdCaplen,
        Fault::CaplenExceedsOrig,
        Fault::GarbageRecordHeader,
        Fault::TimestampRegression,
        Fault::DuplicateRecord,
        Fault::ReorderRecords,
        Fault::InsertGarbage,
        Fault::FlipPayloadBits,
    ];

    /// The checkpoint-file fault modes. Kept out of [`Fault::ALL`] because
    /// they damage `ent_core::checkpoint` files, not pcap buffers — the
    /// capture-corpus sweeps iterate `ALL` against pcaps only.
    pub const CHECKPOINT: [Fault; 2] = [Fault::TruncateCheckpoint, Fault::CorruptCheckpoint];

    /// True if this fault leaves the file unreadable even for the
    /// recovering reader (the global header itself is destroyed).
    pub fn is_fatal(self) -> bool {
        matches!(self, Fault::BadMagic)
    }
}

/// Little-endian u32 at `off`, or 0 when out of range.
fn le32_at(data: &[u8], off: usize) -> u32 {
    match data.get(off..off.saturating_add(4)) {
        Some(&[a, b, c, d]) => u32::from_le_bytes([a, b, c, d]),
        _ => 0,
    }
}

/// Overwrite `bytes.len()` bytes at `off`; out-of-range writes are dropped.
fn put_at(data: &mut [u8], off: usize, bytes: &[u8]) {
    if let Some(dst) = data.get_mut(off..off.saturating_add(bytes.len())) {
        dst.copy_from_slice(bytes);
    }
}

/// Byte offsets of each record in a well-formed little-endian capture
/// buffer, paired with its caplen.
fn record_offsets(data: &[u8]) -> Vec<(usize, u32)> {
    let mut v = Vec::new();
    let mut pos = 24;
    while pos + 16 <= data.len() {
        let caplen = le32_at(data, pos + 8);
        let Some(end) = (pos + 16).checked_add(caplen as usize) else {
            break;
        };
        if end > data.len() {
            break;
        }
        v.push((pos, caplen));
        pos = end;
    }
    v
}

/// Seeded injector applying [`Fault`] modes to capture buffers.
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Create an injector; the same seed reproduces the same damage.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Apply one fault to `data` (a well-formed little-endian capture
    /// buffer). Returns `false` when the file has too few records for the
    /// requested fault (nothing was changed).
    pub fn apply(&mut self, data: &mut Vec<u8>, fault: Fault) -> bool {
        let recs = record_offsets(data);
        match fault {
            Fault::TruncateTail => {
                let Some(&(off, caplen)) = recs.last() else {
                    return false;
                };
                // Cut anywhere strictly inside the final record.
                let end = off + 16 + caplen as usize;
                let cut = self.rng.random_range(off + 1..end);
                data.truncate(cut);
            }
            Fault::BadMagic => {
                if data.len() < 4 {
                    return false;
                }
                data[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            }
            Fault::AbsurdSnaplen => {
                if data.len() < 24 {
                    return false;
                }
                data[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
            }
            Fault::ZeroCaplen => {
                let Some(&(off, caplen)) = self.pick(&recs) else {
                    return false;
                };
                put_at(data, off + 8, &0u32.to_le_bytes());
                data.drain(off + 16..off + 16 + caplen as usize);
            }
            Fault::AbsurdCaplen => {
                let Some(&(off, _)) = self.pick(&recs) else {
                    return false;
                };
                let absurd = 0x4000_0000u32 | self.rng.random_range(0u32..0x1000);
                put_at(data, off + 8, &absurd.to_le_bytes());
            }
            Fault::CaplenExceedsOrig => {
                let candidates: Vec<_> = recs.iter().filter(|(_, c)| *c > 0).copied().collect();
                let Some(&(off, caplen)) = self.pick(&candidates) else {
                    return false;
                };
                let orig = self.rng.random_range(0..caplen);
                put_at(data, off + 12, &orig.to_le_bytes());
            }
            Fault::GarbageRecordHeader => {
                let Some(&(off, _)) = self.pick(&recs) else {
                    return false;
                };
                if let Some(hdr) = data.get_mut(off..off + 16) {
                    for b in hdr {
                        *b = self.rng.random::<u8>();
                    }
                }
                // Guarantee implausibility so the damage is detectable
                // regardless of the random draw.
                put_at(data, off + 4, &0x7FFF_FFFFu32.to_le_bytes());
            }
            Fault::TimestampRegression => {
                if recs.len() < 2 {
                    return false;
                }
                let i = self.rng.random_range(1..recs.len());
                let (Some(&(prev, _)), Some(&(off, _))) = (recs.get(i - 1), recs.get(i)) else {
                    return false;
                };
                let prev_sec = le32_at(data, prev);
                let back = self.rng.random_range(1u32..100);
                put_at(data, off, &prev_sec.saturating_sub(back).to_le_bytes());
                put_at(data, off + 4, &0u32.to_le_bytes());
            }
            Fault::DuplicateRecord => {
                let Some(&(off, caplen)) = self.pick(&recs) else {
                    return false;
                };
                let end = off + 16 + caplen as usize;
                let copy = data.get(off..end).unwrap_or(&[]).to_vec();
                data.splice(end..end, copy);
            }
            Fault::ReorderRecords => {
                if recs.len() < 2 {
                    return false;
                }
                let i = self.rng.random_range(0..recs.len() - 1);
                let (Some(&(a_off, a_cap)), Some(&(b_off, b_cap))) = (recs.get(i), recs.get(i + 1))
                else {
                    return false;
                };
                let a_end = a_off + 16 + a_cap as usize;
                let b_end = b_off + 16 + b_cap as usize;
                let mut swapped = Vec::with_capacity(b_end - a_off);
                swapped.extend_from_slice(data.get(b_off..b_end).unwrap_or(&[]));
                swapped.extend_from_slice(data.get(a_off..a_end).unwrap_or(&[]));
                data.splice(a_off..b_end, swapped);
            }
            Fault::InsertGarbage => {
                let Some(&(off, _)) = self.pick(&recs) else {
                    return false;
                };
                let n = self.rng.random_range(1usize..64);
                let garbage: Vec<u8> = (0..n).map(|_| self.rng.random::<u8>()).collect();
                data.splice(off..off, garbage);
            }
            Fault::FlipPayloadBits => {
                let candidates: Vec<_> = recs.iter().filter(|(_, c)| *c > 0).copied().collect();
                let Some(&(off, caplen)) = self.pick(&candidates) else {
                    return false;
                };
                let flips = self.rng.random_range(1usize..8);
                for _ in 0..flips {
                    let byte = off + 16 + self.rng.random_range(0..caplen as usize);
                    let mask = 1u8 << self.rng.random_range(0u32..8);
                    if let Some(b) = data.get_mut(byte) {
                        *b ^= mask;
                    }
                }
            }
            Fault::TruncateCheckpoint => {
                // Checkpoint faults treat the buffer as opaque bytes: no
                // record structure to respect, just a torn write.
                if data.len() < 2 {
                    return false;
                }
                let cut = self.rng.random_range(1..data.len());
                data.truncate(cut);
            }
            Fault::CorruptCheckpoint => {
                // Flip bytes strictly past the 16-byte magic/version/len
                // prefix so the checksum — not the magic check — must
                // catch the damage.
                if data.len() <= 16 {
                    return false;
                }
                let flips = self.rng.random_range(1usize..8);
                for _ in 0..flips {
                    let byte = 16 + self.rng.random_range(0..data.len() - 16);
                    let mask = 1u8 << self.rng.random_range(0u32..8);
                    if let Some(b) = data.get_mut(byte) {
                        *b ^= mask;
                    }
                }
            }
        }
        true
    }

    fn pick<'r>(&mut self, recs: &'r [(usize, u32)]) -> Option<&'r (usize, u32)> {
        if recs.is_empty() {
            return None;
        }
        recs.get(self.rng.random_range(0..recs.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PcapWriter, RecoveringReader, TimedPacket};
    use ent_wire::Timestamp;

    fn sample_pcap(n: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535).unwrap();
        for i in 0..n {
            w.write_packet(&TimedPacket::new(
                Timestamp::from_micros(i * 1_000),
                vec![i as u8; 60],
            ))
            .unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn injection_is_deterministic() {
        for fault in Fault::ALL {
            let mut a = sample_pcap(8);
            let mut b = sample_pcap(8);
            FaultInjector::new(99).apply(&mut a, fault);
            FaultInjector::new(99).apply(&mut b, fault);
            assert_eq!(a, b, "{fault:?} not deterministic");
        }
    }

    #[test]
    fn every_fault_changes_the_file() {
        let clean = sample_pcap(8);
        for fault in Fault::ALL {
            let mut damaged = clean.clone();
            assert!(
                FaultInjector::new(7).apply(&mut damaged, fault),
                "{fault:?} not applied"
            );
            assert_ne!(damaged, clean, "{fault:?} left the file unchanged");
        }
    }

    #[test]
    fn every_nonfatal_fault_is_survivable() {
        for (i, fault) in Fault::ALL.into_iter().enumerate() {
            if fault.is_fatal() {
                continue;
            }
            let mut buf = sample_pcap(10);
            FaultInjector::new(1000 + i as u64).apply(&mut buf, fault);
            let (pkts, stats) = RecoveringReader::new(&buf)
                .unwrap_or_else(|e| panic!("{fault:?} unreadable: {e}"))
                .read_all();
            // Most of the trace must survive every single-point fault.
            assert!(pkts.len() >= 7, "{fault:?}: only {} records", pkts.len());
            // And the damage (if visible at the pcap layer) must be tallied.
            let invisible = matches!(
                fault,
                Fault::DuplicateRecord | Fault::ReorderRecords | Fault::FlipPayloadBits
            );
            assert!(
                invisible || !stats.is_clean(),
                "{fault:?}: damage not tallied ({stats})"
            );
        }
    }

    #[test]
    fn fatal_fault_is_a_typed_error() {
        let mut buf = sample_pcap(3);
        FaultInjector::new(5).apply(&mut buf, Fault::BadMagic);
        assert!(RecoveringReader::new(&buf).is_err());
    }

    #[test]
    fn reorder_fault_shows_up_as_clock_regression() {
        let mut buf = sample_pcap(6);
        FaultInjector::new(3).apply(&mut buf, Fault::ReorderRecords);
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 6);
        assert_eq!(stats.clock_regressions, 1);
    }

    #[test]
    fn checkpoint_faults_change_opaque_buffers_deterministically() {
        // Any byte buffer with a 16-byte header prefix qualifies; no pcap
        // structure is required for the checkpoint fault modes.
        let clean: Vec<u8> = (0u16..200).map(|i| i as u8).collect();
        for (i, fault) in Fault::CHECKPOINT.into_iter().enumerate() {
            let mut a = clean.clone();
            let mut b = clean.clone();
            assert!(FaultInjector::new(40 + i as u64).apply(&mut a, fault));
            assert!(FaultInjector::new(40 + i as u64).apply(&mut b, fault));
            assert_eq!(a, b, "{fault:?} not deterministic");
            assert_ne!(a, clean, "{fault:?} left the buffer unchanged");
            assert!(!fault.is_fatal());
        }
    }

    #[test]
    fn corrupt_checkpoint_spares_the_header_prefix() {
        let clean = vec![0xAAu8; 64];
        for seed in 0..32 {
            let mut damaged = clean.clone();
            assert!(FaultInjector::new(seed).apply(&mut damaged, Fault::CorruptCheckpoint));
            assert_eq!(
                &damaged[..16],
                &clean[..16],
                "seed {seed} touched the magic/version prefix"
            );
            assert_ne!(&damaged[16..], &clean[16..]);
        }
    }

    #[test]
    fn checkpoint_faults_refuse_degenerate_buffers() {
        let mut tiny = vec![1u8];
        assert!(!FaultInjector::new(1).apply(&mut tiny, Fault::TruncateCheckpoint));
        let mut header_only = vec![0u8; 16];
        assert!(!FaultInjector::new(1).apply(&mut header_only, Fault::CorruptCheckpoint));
    }

    #[test]
    fn empty_capture_refuses_record_faults() {
        let mut buf = sample_pcap(0);
        assert!(!FaultInjector::new(1).apply(&mut buf, Fault::TruncateTail));
        assert!(!FaultInjector::new(1).apply(&mut buf, Fault::DuplicateRecord));
        assert!(FaultInjector::new(1).apply(&mut buf, Fault::BadMagic));
    }
}
