//! Multi-stream timestamp merge.
//!
//! The paper's capture rig recorded each direction of a monitored router
//! port on its own NIC (via Shomiti taps) and merged the unidirectional
//! streams by NIC-synchronized timestamps. This module reproduces that merge
//! as a k-way stable merge, with optional per-stream clock offsets modeling
//! residual skew between NICs.
//!
//! Real capture streams are not perfectly sorted: NIC interrupt coalescing
//! and driver buffering reorder nearby packets, and clock steps move
//! timestamps backwards outright. The merge therefore tolerates
//! out-of-order input: each stream is repaired through a **bounded reorder
//! window** before merging — a late packet is re-inserted if its true
//! position lies within the window, and clamped to the window floor if it
//! is older than that — with every intervention counted in [`MergeStats`].

use crate::TimedPacket;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default bounded reorder window (records) used by [`merge_streams`].
pub const DEFAULT_REORDER_WINDOW: usize = 64;

/// Tally of out-of-order repairs performed during a merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Packets re-inserted at their true position within the window.
    pub reordered: u64,
    /// Packets older than the window floor, whose timestamps were clamped
    /// forward to it (a bounded window cannot seat them exactly).
    pub clamped: u64,
}

impl MergeStats {
    /// Total input-order violations encountered.
    pub fn regressions(&self) -> u64 {
        self.reordered + self.clamped
    }
}

/// Repair an almost-sorted packet sequence in place using a bounded
/// reorder window, counting interventions into `stats`.
pub fn restore_order(packets: &mut [TimedPacket], window: usize, stats: &mut MergeStats) {
    let window = window.max(1);
    for i in 1..packets.len() {
        let (Some(prev), Some(cur)) = (packets.get(i - 1), packets.get(i)) else {
            break;
        };
        if cur.ts >= prev.ts {
            continue;
        }
        let lo = i.saturating_sub(window);
        let Some(floor_ts) = packets.get(lo).map(|p| p.ts) else {
            continue;
        };
        if cur.ts < floor_ts && lo > 0 {
            // Older than everything the window retains: clamp forward to
            // the window floor instead of teleporting arbitrarily far back.
            if let Some(p) = packets.get_mut(i) {
                p.ts = floor_ts;
            }
            stats.clamped += 1;
        } else {
            stats.reordered += 1;
        }
        let Some(ts) = packets.get(i).map(|p| p.ts) else {
            continue;
        };
        let seated = packets.get(lo..i).map_or(0, |w| w.partition_point(|p| p.ts <= ts));
        let pos = lo + seated;
        if let Some(run) = packets.get_mut(pos..=i) {
            run.rotate_right(1);
        }
    }
}

/// One unidirectional capture stream plus the clock offset (microseconds,
/// may be negative) of its NIC relative to the reference clock.
#[derive(Debug)]
pub struct Stream {
    /// Packets in capture order (must be sorted by timestamp).
    pub packets: Vec<TimedPacket>,
    /// Clock offset applied during merge: positive shifts later.
    pub clock_offset_us: i64,
}

impl Stream {
    /// A stream with a perfectly synchronized clock.
    pub fn synchronized(packets: Vec<TimedPacket>) -> Stream {
        Stream {
            packets,
            clock_offset_us: 0,
        }
    }
}

struct HeapEntry {
    ts_us: u64,
    stream: usize,
    index: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest timestamp.
        // Ties break by stream index then packet index for determinism.
        other
            .ts_us
            .cmp(&self.ts_us)
            .then(other.stream.cmp(&self.stream))
            .then(other.index.cmp(&self.index))
    }
}

fn adjusted_ts(p: &TimedPacket, offset_us: i64) -> u64 {
    if offset_us >= 0 {
        p.ts.micros().saturating_add(offset_us as u64)
    } else {
        p.ts.micros().saturating_sub(offset_us.unsigned_abs())
    }
}

/// Merge capture streams into one timestamp-ordered trace, applying each
/// stream's clock offset. Out-of-order input is tolerated via a
/// [`DEFAULT_REORDER_WINDOW`]-record repair pass per stream; use
/// [`merge_streams_with_stats`] to observe how much repair was needed.
pub fn merge_streams(streams: Vec<Stream>) -> Vec<TimedPacket> {
    merge_streams_with_stats(streams, DEFAULT_REORDER_WINDOW).0
}

/// [`merge_streams`] with an explicit reorder window, returning the repair
/// tally alongside the merged trace.
pub fn merge_streams_with_stats(
    mut streams: Vec<Stream>,
    window: usize,
) -> (Vec<TimedPacket>, MergeStats) {
    let mut stats = MergeStats::default();
    for s in &mut streams {
        restore_order(&mut s.packets, window, &mut stats);
    }
    let total: usize = streams.iter().map(|s| s.packets.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(streams.len());
    for (si, s) in streams.iter().enumerate() {
        if let Some(p) = s.packets.first() {
            heap.push(HeapEntry {
                ts_us: adjusted_ts(p, s.clock_offset_us),
                stream: si,
                index: 0,
            });
        }
    }
    while let Some(e) = heap.pop() {
        let Some(s) = streams.get(e.stream) else {
            continue;
        };
        let Some(cur) = s.packets.get(e.index) else {
            continue;
        };
        let mut pkt = cur.clone();
        pkt.ts = ent_wire::Timestamp::from_micros(e.ts_us);
        out.push(pkt);
        let next = e.index + 1;
        if let Some(np) = s.packets.get(next) {
            heap.push(HeapEntry {
                ts_us: adjusted_ts(np, s.clock_offset_us),
                stream: e.stream,
                index: next,
            });
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ent_wire::Timestamp;

    fn pkt(us: u64, tag: u8) -> TimedPacket {
        TimedPacket::new(Timestamp::from_micros(us), vec![tag; 14])
    }

    #[test]
    fn two_way_merge_is_ordered() {
        let a = Stream::synchronized(vec![pkt(10, 1), pkt(30, 1), pkt(50, 1)]);
        let b = Stream::synchronized(vec![pkt(20, 2), pkt(40, 2)]);
        let merged = merge_streams(vec![a, b]);
        let ts: Vec<u64> = merged.iter().map(|p| p.ts.micros()).collect();
        assert_eq!(ts, vec![10, 20, 30, 40, 50]);
        let tags: Vec<u8> = merged.iter().map(|p| p.frame[0]).collect();
        assert_eq!(tags, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn clock_offset_applied() {
        let a = Stream {
            packets: vec![pkt(100, 1)],
            clock_offset_us: -90,
        };
        let b = Stream::synchronized(vec![pkt(50, 2)]);
        let merged = merge_streams(vec![a, b]);
        assert_eq!(merged[0].frame[0], 1); // shifted to t=10
        assert_eq!(merged[0].ts.micros(), 10);
        assert_eq!(merged[1].ts.micros(), 50);
    }

    #[test]
    fn ties_are_deterministic_by_stream_order() {
        let a = Stream::synchronized(vec![pkt(5, 1)]);
        let b = Stream::synchronized(vec![pkt(5, 2)]);
        let merged = merge_streams(vec![a, b]);
        assert_eq!(merged[0].frame[0], 1);
        assert_eq!(merged[1].frame[0], 2);
    }

    #[test]
    fn empty_and_single_stream() {
        assert!(merge_streams(vec![]).is_empty());
        let a = Stream::synchronized(vec![pkt(1, 1), pkt(2, 1)]);
        assert_eq!(merge_streams(vec![a]).len(), 2);
        let e = Stream::synchronized(vec![]);
        let b = Stream::synchronized(vec![pkt(3, 2)]);
        assert_eq!(merge_streams(vec![e, b]).len(), 1);
    }

    #[test]
    fn out_of_order_input_repaired_within_window() {
        // 30 is 20 µs late; within a 4-record window it seats exactly.
        let a = Stream::synchronized(vec![pkt(10, 1), pkt(40, 1), pkt(30, 1), pkt(50, 1)]);
        let (merged, stats) = merge_streams_with_stats(vec![a], 4);
        let ts: Vec<u64> = merged.iter().map(|p| p.ts.micros()).collect();
        assert_eq!(ts, vec![10, 30, 40, 50]);
        assert_eq!(stats.reordered, 1);
        assert_eq!(stats.clamped, 0);
    }

    #[test]
    fn regression_beyond_window_clamps_to_floor() {
        // The late packet is older than everything a 2-record window
        // retains: it cannot be seated exactly, so its timestamp clamps to
        // the window floor and the output stays sorted.
        let a = Stream::synchronized(vec![
            pkt(100, 1),
            pkt(200, 1),
            pkt(300, 1),
            pkt(400, 1),
            pkt(5, 9),
        ]);
        let (merged, stats) = merge_streams_with_stats(vec![a], 2);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert_eq!(merged.len(), 5);
        assert_eq!(stats.clamped, 1);
        assert_eq!(stats.regressions(), 1);
        // The late packet survives, clamped into the window.
        assert!(merged.iter().any(|p| p.frame[0] == 9));
    }

    #[test]
    fn default_merge_tolerates_unsorted_streams() {
        let a = Stream::synchronized(vec![pkt(30, 1), pkt(10, 1), pkt(20, 1)]);
        let b = Stream::synchronized(vec![pkt(15, 2)]);
        let merged = merge_streams(vec![a, b]);
        assert_eq!(merged.len(), 4);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn restore_order_is_identity_on_sorted_input() {
        let mut pkts = vec![pkt(1, 1), pkt(2, 1), pkt(3, 1)];
        let orig = pkts.clone();
        let mut stats = MergeStats::default();
        restore_order(&mut pkts, 8, &mut stats);
        assert_eq!(pkts, orig);
        assert_eq!(stats, MergeStats::default());
    }

    #[test]
    fn four_nic_merge_preserves_all_packets() {
        // Model the paper's rig: 4 NICs = 2 subnets x 2 directions.
        let streams: Vec<Stream> = (0..4)
            .map(|nic| {
                Stream {
                    packets: (0..100).map(|i| pkt(i * 40 + nic * 7, nic as u8)).collect(),
                    clock_offset_us: nic as i64 - 2,
                }
            })
            .collect();
        let merged = merge_streams(streams);
        assert_eq!(merged.len(), 400);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
