//! Damage-tolerant pcap ingest.
//!
//! Real capture files arrive damaged: the paper's own apparatus produced
//! truncated files when disks filled, records with clock regressions when
//! NIC timestamp counters wrapped or drifted, and the occasional garbage
//! run when a capture host crashed mid-write. The strict
//! [`PcapReader`](crate::PcapReader) fails the whole file on the first bad
//! record; [`RecoveringReader`] instead salvages everything salvageable and
//! tallies exactly what it had to skip or repair in [`IngestStats`], so an
//! analysis over a damaged trace is *labelled* degraded rather than
//! silently wrong.
//!
//! Recovery semantics:
//!
//! * A malformed record header (impossible microseconds, caplen beyond the
//!   clamped snaplen bound) triggers a byte-wise **resync scan** for the
//!   next plausible record header; skipped bytes are counted.
//! * A record whose payload runs past end-of-file marks the trace
//!   truncated and ends iteration cleanly.
//! * `caplen > orig_len` is repaired (`orig_len` raised to `caplen`) and
//!   counted.
//! * Timestamp regressions are clamped to the previous record's timestamp
//!   (output stays monotone) and counted.
//! * A timestamp leaping more than a minute forward is pinned to the
//!   previous clock (and counted) unless the next record corroborates the
//!   jump — a genuine capture gap passes through, while a corrupted `sec`
//!   field or false resync lock cannot poison the monotone clamp.
//! * Zero-length records are dropped and counted.
//! * A file-header snaplen above [`MAX_RECORD_BYTES`] is clamped before any
//!   allocation and flagged.
//!
//! Only the 24-byte global header is load-bearing: a bad magic, an
//! unsupported link type, or a file shorter than the header is a fatal
//! [`PcapError`] — there is no frame boundary to recover.

use crate::format::{record_limit, LINKTYPE_ETHERNET, MAGIC_USEC, MAX_RECORD_BYTES};
use crate::{PcapError, Result, TimedPacket};
use ent_wire::Timestamp;

/// Tally of everything a [`RecoveringReader`] skipped, repaired, or
/// clamped while ingesting one capture file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records successfully delivered.
    pub records: u64,
    /// Damaged record headers skipped via resync scan.
    pub malformed_records: u64,
    /// Records delivered after repairing `caplen > orig_len`.
    pub repaired_records: u64,
    /// Zero-length records dropped.
    pub zero_len_records: u64,
    /// Records whose timestamp ran backwards (clamped to monotone).
    pub clock_regressions: u64,
    /// Bytes discarded while resynchronizing or at a truncated tail.
    pub bytes_skipped: u64,
    /// The file ended mid-record.
    pub truncated_tail: bool,
    /// The file-header snaplen exceeded [`MAX_RECORD_BYTES`] and was
    /// clamped before any allocation.
    pub snaplen_clamped: bool,
}

impl IngestStats {
    /// True when the file was ingested without any skip, repair, or clamp.
    pub fn is_clean(&self) -> bool {
        self.damage_events() == 0 && self.bytes_skipped == 0
    }

    /// Total count of distinct damage events observed.
    pub fn damage_events(&self) -> u64 {
        self.malformed_records
            + self.repaired_records
            + self.zero_len_records
            + self.clock_regressions
            + u64::from(self.truncated_tail)
            + u64::from(self.snaplen_clamped)
    }

    /// Fold another tally into this one (e.g. across a dataset's traces).
    pub fn absorb(&mut self, other: &IngestStats) {
        self.records += other.records;
        self.malformed_records += other.malformed_records;
        self.repaired_records += other.repaired_records;
        self.zero_len_records += other.zero_len_records;
        self.clock_regressions += other.clock_regressions;
        self.bytes_skipped += other.bytes_skipped;
        self.truncated_tail |= other.truncated_tail;
        self.snaplen_clamped |= other.snaplen_clamped;
    }
}

impl core::fmt::Display for IngestStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(f, "{} records, clean", self.records);
        }
        write!(
            f,
            "{} records; {} malformed skipped, {} repaired, {} zero-length, \
             {} clock regressions, {} bytes skipped{}{}",
            self.records,
            self.malformed_records,
            self.repaired_records,
            self.zero_len_records,
            self.clock_regressions,
            self.bytes_skipped,
            if self.truncated_tail { ", truncated tail" } else { "" },
            if self.snaplen_clamped { ", snaplen clamped" } else { "" },
        )
    }
}

struct RecordHeader {
    sec: u32,
    usec: u32,
    caplen: u32,
    orig_len: u32,
}

/// A salvaged record borrowed straight from the capture buffer — the
/// zero-copy counterpart of [`TimedPacket`], produced by
/// [`RecoveringReader::next_record`].
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    /// Capture timestamp (after monotone clamping/pinning).
    pub ts: Timestamp,
    /// Captured frame bytes, borrowed from the input buffer.
    pub frame: &'a [u8],
    /// Original on-the-wire length (repaired if the header under-reported).
    pub orig_len: u32,
}

/// Recovering pcap reader over an in-memory capture file.
///
/// Operates on a byte slice rather than a stream because resynchronization
/// needs random access to scan for the next plausible record boundary.
pub struct RecoveringReader<'a> {
    data: &'a [u8],
    pos: usize,
    swapped: bool,
    snaplen: u32,
    last_ts_us: Option<u64>,
    resynced: bool,
    stats: IngestStats,
}

/// Largest unvouched clock step (either direction) a record may take. A
/// false resync lock or a corrupted `sec` field yields an arbitrary
/// timestamp; without this bound one such record poisons the monotone
/// clamp and flattens every later timestamp in the file. Larger forward
/// jumps are still accepted when the following record's clock corroborates
/// them (a genuine capture gap), so idle periods survive.
const MAX_CLOCK_JUMP_US: u64 = 60 * 1_000_000;

/// How far past the first structurally-plausible candidate a resync keeps
/// scanning for one that is also clock-consistent. One maximum-size record
/// is enough to step over a false lock inside a damaged record's payload;
/// further damage is handled by the next resync.
const RESYNC_CLOCK_SCAN: usize = MAX_RECORD_BYTES as usize;

impl<'a> RecoveringReader<'a> {
    /// Open a capture buffer, validating only the global header (which is
    /// unrecoverable when damaged — without it there is no byte order and
    /// no reason to believe the file is a capture at all).
    pub fn new(data: &'a [u8]) -> Result<RecoveringReader<'a>> {
        if data.len() < 24 {
            return Err(PcapError::BadFormat("file shorter than pcap global header"));
        }
        let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        let swapped = match magic {
            MAGIC_USEC => false,
            m if m == MAGIC_USEC.swap_bytes() => true,
            0xA1B2_3C4D | 0x4D3C_B2A1 => {
                return Err(PcapError::BadFormat("nanosecond pcap not supported"))
            }
            _ => return Err(PcapError::BadFormat("bad magic")),
        };
        let u32_at = |off: usize| {
            let b = match data.get(off..off.saturating_add(4)) {
                Some(&[a, b, c, d]) => [a, b, c, d],
                _ => [0; 4],
            };
            if swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        if u32_at(20) != LINKTYPE_ETHERNET {
            return Err(PcapError::BadFormat("only Ethernet link type supported"));
        }
        let mut stats = IngestStats::default();
        let mut snaplen = u32_at(16);
        if snaplen > MAX_RECORD_BYTES {
            stats.snaplen_clamped = true;
            snaplen = MAX_RECORD_BYTES;
        }
        Ok(RecoveringReader {
            data,
            pos: 24,
            swapped,
            snaplen,
            last_ts_us: None,
            resynced: false,
            stats,
        })
    }

    /// Reopen a capture buffer at a previously-recorded byte offset with a
    /// previously-recorded clock watermark — the checkpoint-resume entry
    /// point. The global header is validated exactly as in
    /// [`RecoveringReader::new`]; the offset is only clamped to the buffer,
    /// never trusted to be a record boundary. If it is stale or wrong (a
    /// checkpoint against a different file), the very first
    /// [`RecoveringReader::next_record`] call fails the header sanity check
    /// and the normal resync scan walks to the next plausible record — the
    /// same salvage path damaged captures already take, with the damage
    /// tallied in [`IngestStats`].
    pub fn resume(
        data: &'a [u8],
        offset: u64,
        last_ts_us: Option<u64>,
    ) -> Result<RecoveringReader<'a>> {
        let mut r = RecoveringReader::new(data)?;
        // ent-lint: allow(E002) — clamped min() against the buffer length
        r.pos = (offset as usize).min(data.len()).max(24);
        r.last_ts_us = last_ts_us;
        Ok(r)
    }

    /// Byte offset of the next unread record (24 right after open). Taken
    /// *before* a [`RecoveringReader::next_record`] call, this is the
    /// resume offset that makes that record the first one delivered after
    /// [`RecoveringReader::resume`].
    pub fn position(&self) -> u64 {
        self.pos as u64
    }

    /// The monotone clock watermark (microseconds of the last delivered
    /// record, `None` before the first). Serialized alongside
    /// [`RecoveringReader::position`] so a resumed reader clamps damaged
    /// timestamps exactly like the uninterrupted one.
    pub fn last_clock_us(&self) -> Option<u64> {
        self.last_ts_us
    }

    /// The file-header snaplen, after clamping to [`MAX_RECORD_BYTES`].
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Damage tally so far (final once iteration returns `None`).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    fn header_at(&self, off: usize) -> RecordHeader {
        let u32_at = |o: usize| {
            let b = match self.data.get(o..o.saturating_add(4)) {
                Some(&[a, b, c, d]) => [a, b, c, d],
                _ => [0; 4],
            };
            if self.swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        RecordHeader {
            sec: u32_at(off),
            usec: u32_at(off + 4),
            caplen: u32_at(off + 8),
            orig_len: u32_at(off + 12),
        }
    }

    /// Field-level sanity of a record header at `off`: microseconds in
    /// range, caplen under the clamped bound. Random bytes pass with
    /// probability ~1.4e-8 (usec bound ~2.3e-4 times caplen bound ~6e-5).
    fn header_sane(&self, off: usize) -> bool {
        if off + 16 > self.data.len() {
            return false;
        }
        let h = self.header_at(off);
        h.usec < 1_000_000 && h.caplen <= record_limit(self.snaplen)
    }

    /// Could a record plausibly start at `off`? Used only while
    /// resynchronizing, where a false lock is expensive (it can swallow
    /// the rest of the file), so beyond field sanity the candidate must
    /// fit in the remaining bytes and chain into end-of-file or another
    /// sane header. Payload bytes that happen to look like a header fail
    /// the chain check because their bogus caplen points nowhere valid.
    fn plausible(&self, off: usize) -> bool {
        if !self.header_sane(off) {
            return false;
        }
        let h = self.header_at(off);
        let end = off + 16 + h.caplen as usize;
        if end > self.data.len() {
            return false;
        }
        end == self.data.len() || self.header_sane(end)
    }

    /// Is `h`'s timestamp believable given the last good clock? Payload
    /// bytes that chain into a structurally valid record still carry an
    /// arbitrary `sec` field; the clock is the one signal a misaligned
    /// parse cannot fake.
    fn clock_consistent(&self, h: &RecordHeader) -> bool {
        let Some(last) = self.last_ts_us else {
            return true;
        };
        let ts = u64::from(h.sec) * 1_000_000 + u64::from(h.usec);
        ts + MAX_CLOCK_JUMP_US >= last && ts <= last + MAX_CLOCK_JUMP_US
    }

    /// Does the record after the current one (at `self.pos`, already
    /// advanced) carry a clock near `ts_us`? Vouches for a large forward
    /// jump being a genuine capture gap rather than a one-record outlier.
    fn next_clock_confirms(&self, ts_us: u64) -> bool {
        if !self.header_sane(self.pos) {
            return false;
        }
        let h = self.header_at(self.pos);
        let next = u64::from(h.sec) * 1_000_000 + u64::from(h.usec);
        next + MAX_CLOCK_JUMP_US >= ts_us && next <= ts_us + MAX_CLOCK_JUMP_US
    }

    /// Skip forward from a damaged record header to the next plausible one.
    ///
    /// Prefers a candidate whose timestamp agrees with the last good clock:
    /// on files with uniform record sizes a misaligned lock is structurally
    /// self-consistent forever, so structure alone cannot reject it. If no
    /// clock-consistent candidate appears within [`RESYNC_CLOCK_SCAN`] of
    /// the first structural match, the structural match is used as a
    /// fallback (a real capture may simply have a gap).
    fn resync(&mut self) {
        let start = self.pos;
        self.stats.malformed_records += 1;
        let mut fallback: Option<usize> = None;
        let mut off = self.pos.saturating_add(1);
        let mut lock: Option<usize> = None;
        while off.saturating_add(16) <= self.data.len() {
            if let Some(f) = fallback {
                if off > f.saturating_add(RESYNC_CLOCK_SCAN) {
                    break;
                }
            }
            if self.plausible(off) {
                if self.clock_consistent(&self.header_at(off)) {
                    lock = Some(off);
                    break;
                }
                fallback.get_or_insert(off);
            }
            off = off.saturating_add(1);
        }
        self.pos = lock.or(fallback).unwrap_or(self.data.len());
        self.stats.bytes_skipped += self.pos.saturating_sub(start) as u64;
        self.resynced = true;
    }

    /// Deliver the next salvageable record as a borrowed view into the
    /// capture buffer; `None` at end of input. Never fails: damage is
    /// skipped or repaired and tallied in [`stats`].
    ///
    /// This is the zero-copy hot path: the frame slice borrows the input
    /// buffer directly (lifetime `'a`, independent of `&mut self`, so the
    /// caller may keep views while continuing to read). Use
    /// [`RecoveringReader::next_packet`] when an owned copy is needed.
    ///
    /// [`stats`]: RecoveringReader::stats
    pub fn next_record(&mut self) -> Option<RecordView<'a>> {
        loop {
            let remaining = self.data.len().saturating_sub(self.pos);
            if remaining == 0 {
                return None;
            }
            if remaining < 16 {
                // Tail shorter than a record header: mid-record EOF.
                self.stats.truncated_tail = true;
                self.stats.bytes_skipped += remaining as u64;
                self.pos = self.data.len();
                return None;
            }
            let h = self.header_at(self.pos);
            if h.usec >= 1_000_000 || h.caplen > record_limit(self.snaplen) {
                self.resync();
                continue;
            }
            if h.caplen == 0 {
                // ent-lint: allow(E002) — u64 damage counter, not offset math
                self.stats.zero_len_records += 1;
                self.pos = self.pos.saturating_add(16);
                continue;
            }
            let cap = h.caplen as usize;
            if cap > remaining.saturating_sub(16) {
                // Payload runs past end-of-file: mid-record EOF.
                self.stats.truncated_tail = true;
                self.stats.bytes_skipped += remaining as u64;
                self.pos = self.data.len();
                return None;
            }
            let payload_start = self.pos.saturating_add(16);
            let frame = self
                .data
                .get(payload_start..payload_start.saturating_add(cap))
                .unwrap_or(&[]);
            self.pos = payload_start.saturating_add(cap);
            let mut orig_len = h.orig_len;
            if orig_len < h.caplen {
                self.stats.repaired_records += 1;
                orig_len = h.caplen;
            }
            let mut ts_us = u64::from(h.sec) * 1_000_000 + u64::from(h.usec);
            if let Some(last) = self.last_ts_us {
                if ts_us < last {
                    self.stats.clock_regressions += 1;
                    ts_us = last;
                } else if ts_us > last + MAX_CLOCK_JUMP_US
                    && (self.resynced || !self.next_clock_confirms(ts_us))
                {
                    // A wildly future clock is either a false resync lock
                    // or a corrupted `sec` field — unless the next record
                    // corroborates it (a genuine capture gap). Pin the
                    // outlier so it cannot poison the monotone clamp.
                    self.stats.clock_regressions += 1;
                    ts_us = last;
                }
            }
            self.resynced = false;
            self.last_ts_us = Some(ts_us);
            self.stats.records += 1;
            return Some(RecordView {
                ts: Timestamp::from_micros(ts_us),
                frame,
                orig_len,
            });
        }
    }

    /// Deliver the next salvageable record as an owned [`TimedPacket`].
    /// A copying convenience wrapper around [`RecoveringReader::next_record`].
    #[allow(clippy::should_implement_trait)] // mirrors PcapReader::next_packet
    pub fn next_packet(&mut self) -> Option<TimedPacket> {
        self.next_record().map(|r| TimedPacket {
            ts: r.ts,
            frame: r.frame.to_vec(),
            orig_len: r.orig_len,
        })
    }

    /// Drain every salvageable record and return the final damage tally.
    pub fn read_all(mut self) -> (Vec<TimedPacket>, IngestStats) {
        let mut v = Vec::new();
        while let Some(p) = self.next_packet() {
            v.push(p);
        }
        (v, self.stats)
    }
}

impl Iterator for RecoveringReader<'_> {
    type Item = TimedPacket;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcapWriter;

    fn sample_pcap(n: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535).unwrap();
        for i in 0..n {
            w.write_packet(&TimedPacket::new(
                Timestamp::from_micros(i * 1_000),
                vec![i as u8; 60],
            ))
            .unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn clean_file_reads_clean() {
        let buf = sample_pcap(10);
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 10);
        assert!(stats.is_clean(), "{stats}");
        assert_eq!(stats.records, 10);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut buf = sample_pcap(2);
        buf[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        assert!(matches!(
            RecoveringReader::new(&buf),
            Err(PcapError::BadFormat("bad magic"))
        ));
    }

    #[test]
    fn short_file_is_fatal() {
        assert!(RecoveringReader::new(&[0u8; 10]).is_err());
    }

    #[test]
    fn truncated_tail_salvages_prefix() {
        let mut buf = sample_pcap(5);
        buf.truncate(buf.len() - 30); // cut into the last record's payload
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 4);
        assert!(stats.truncated_tail);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn garbage_header_resyncs_to_next_record() {
        let mut buf = sample_pcap(5);
        // Destroy record 2's header (records start at 24, each 16+60).
        let off = 24 + 2 * 76;
        buf[off..off + 16].copy_from_slice(&[0xFF; 16]);
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        // Records 0,1 then resync past the damaged record into 3,4. The
        // damaged record's payload (0x02 x 60) contains no plausible header
        // (usec bytes all 0x02020202 > 1e6), so resync lands on record 3.
        assert_eq!(pkts.len(), 4);
        assert_eq!(stats.malformed_records, 1);
        assert!(stats.bytes_skipped >= 16);
        assert_eq!(pkts[2].frame[0], 3);
    }

    #[test]
    fn resync_skips_wild_clock_candidate() {
        let mut buf = sample_pcap(4);
        // Destroy record 1's header so the reader must resync, then give
        // record 2 a far-future `sec` — the shape a false lock on payload
        // bytes produces. Resync must step over it and lock record 3,
        // whose clock agrees with record 0; otherwise the monotone clamp
        // is dragged to year ~2106 and flattens the rest of the file.
        let r1 = 24 + 76;
        buf[r1..r1 + 16].copy_from_slice(&[0xFF; 16]);
        let r2 = 24 + 2 * 76;
        buf[r2..r2 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(stats.malformed_records, 1);
        assert_eq!(stats.clock_regressions, 0);
        assert_eq!(pkts[1].frame[0], 3);
        assert_eq!(pkts[1].ts, Timestamp::from_micros(3_000));
    }

    #[test]
    fn wild_clock_fallback_lock_is_pinned() {
        let mut buf = sample_pcap(3);
        // Same shape, but the wild record is the last one in the file, so
        // no clock-consistent candidate exists and resync must fall back
        // to it. Its timestamp is pinned to the last good clock instead of
        // advancing the watermark ~136 years.
        let r1 = 24 + 76;
        buf[r1..r1 + 16].copy_from_slice(&[0xFF; 16]);
        let r2 = 24 + 2 * 76;
        buf[r2..r2 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(stats.malformed_records, 1);
        assert_eq!(stats.clock_regressions, 1);
        assert_eq!(pkts[1].frame[0], 2);
        assert_eq!(pkts[1].ts, pkts[0].ts);
    }

    #[test]
    fn isolated_wild_timestamp_is_pinned() {
        let mut buf = sample_pcap(4);
        // Flip a high bit in record 2's `sec` field, as a storage error
        // would. Record 3's clock disowns the jump, so the outlier is
        // pinned instead of dragging the monotone clamp 34 years forward.
        let r2 = 24 + 2 * 76;
        buf[r2 + 3] ^= 0x40;
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 4);
        assert_eq!(stats.clock_regressions, 1);
        assert_eq!(pkts[2].ts, pkts[1].ts);
        assert_eq!(pkts[3].ts, Timestamp::from_micros(3_000));
    }

    #[test]
    fn corroborated_clock_jump_is_a_real_gap() {
        // Two records, a year of idle capture, two more records: the jump
        // is corroborated by its successor and must survive untouched.
        let year_us: u64 = 31_536_000_000_000;
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535).unwrap();
        for (i, ts) in [0, 1_000, year_us, year_us + 1_000].iter().enumerate() {
            w.write_packet(&TimedPacket::new(
                Timestamp::from_micros(*ts),
                vec![i as u8; 60],
            ))
            .unwrap();
        }
        w.finish().unwrap();
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 4);
        assert!(stats.is_clean(), "{stats}");
        assert_eq!(pkts[2].ts, Timestamp::from_micros(year_us));
    }

    #[test]
    fn zero_length_record_dropped_and_counted() {
        let mut buf = sample_pcap(3);
        // Rewrite record 1 as caplen 0 and remove its payload.
        let off = 24 + 76;
        buf[off + 8..off + 12].copy_from_slice(&0u32.to_le_bytes());
        buf.drain(off + 16..off + 76);
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(stats.zero_len_records, 1);
        assert_eq!(pkts[1].frame[0], 2);
    }

    #[test]
    fn clock_regression_clamped_and_counted() {
        let mut buf = sample_pcap(4);
        // Push record 2's timestamp before record 1's.
        let off = 24 + 2 * 76;
        buf[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        buf[off + 4..off + 8].copy_from_slice(&1u32.to_le_bytes());
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 4);
        assert_eq!(stats.clock_regressions, 1);
        // Output is monotone: the regressed record clamps to its predecessor.
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert_eq!(pkts[2].ts, pkts[1].ts);
    }

    #[test]
    fn caplen_over_orig_len_repaired() {
        let mut buf = sample_pcap(2);
        let off = 24;
        buf[off + 12..off + 16].copy_from_slice(&5u32.to_le_bytes()); // orig < caplen 60
        let (pkts, stats) = RecoveringReader::new(&buf).unwrap().read_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(stats.repaired_records, 1);
        assert_eq!(pkts[0].orig_len, 60);
    }

    #[test]
    fn absurd_snaplen_clamped_before_allocation() {
        let mut buf = sample_pcap(2);
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = RecoveringReader::new(&buf).unwrap();
        assert_eq!(r.snaplen(), MAX_RECORD_BYTES);
        let (pkts, stats) = r.read_all();
        assert_eq!(pkts.len(), 2);
        assert!(stats.snaplen_clamped);
    }

    #[test]
    fn resume_at_saved_position_reproduces_the_tail() {
        let buf = sample_pcap(10);
        let mut r = RecoveringReader::new(&buf).unwrap();
        let mut head = Vec::new();
        for _ in 0..4 {
            head.push(r.next_packet().unwrap());
        }
        let (pos, clock) = (r.position(), r.last_clock_us());
        let tail_expected: Vec<_> = r.collect();
        let (tail, stats) = RecoveringReader::resume(&buf, pos, clock)
            .unwrap()
            .read_all();
        assert_eq!(tail, tail_expected);
        assert_eq!(tail.len(), 6);
        assert!(stats.is_clean(), "{stats}");
    }

    #[test]
    fn resume_at_bogus_offset_resyncs_instead_of_failing() {
        let buf = sample_pcap(6);
        // An offset into the middle of a record's payload: not a record
        // boundary. The resync scan must find the next real record.
        let bogus = 24 + 76 + 30;
        let (pkts, stats) = RecoveringReader::resume(&buf, bogus as u64, Some(1_000))
            .unwrap()
            .read_all();
        assert!(!pkts.is_empty());
        assert!(stats.malformed_records > 0 || stats.bytes_skipped > 0);
        // Everything delivered is a genuine tail record, in order.
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Offsets beyond the buffer clamp to EOF (stale checkpoint against
        // a shorter file): iteration ends cleanly.
        let (none, _) = RecoveringReader::resume(&buf, u64::MAX, None)
            .unwrap()
            .read_all();
        assert!(none.is_empty());
    }

    #[test]
    fn stats_display_and_absorb() {
        let mut a = IngestStats {
            records: 5,
            malformed_records: 1,
            ..Default::default()
        };
        let b = IngestStats {
            records: 3,
            truncated_tail: true,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.records, 8);
        assert!(a.truncated_tail);
        assert_eq!(a.damage_events(), 2);
        let s = a.to_string();
        assert!(s.contains("malformed"), "{s}");
        assert!(IngestStats::default().to_string().contains("clean"));
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_terminate() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let n = rng.random_range(0usize..400);
            let mut bytes: Vec<u8> = (0..n).map(|_| rng.random::<u8>()).collect();
            // Half the time, graft a valid global header so iteration runs.
            if rng.random_bool(0.5) && bytes.len() >= 24 {
                bytes[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
                bytes[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
            }
            if let Ok(r) = RecoveringReader::new(&bytes) {
                let (_, stats) = r.read_all();
                let _ = stats.damage_events();
            }
        }
    }
}
