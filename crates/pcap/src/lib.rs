//! # ent-pcap — capture files and the LBNL capture rig
//!
//! Implements the classic libpcap file format (read and write, both byte
//! orders, microsecond resolution), snaplen truncation, configurable packet
//! drops, and the multi-NIC timestamp merge that the paper's measurement
//! apparatus performed: each Shomiti tap produced one *unidirectional* packet
//! stream per router-port direction, and streams were merged by NIC-driver-
//! synchronized timestamps into a single per-subnet trace.
//!
//! ```
//! use ent_pcap::{PcapWriter, PcapReader, TimedPacket};
//! use ent_wire::Timestamp;
//!
//! let pkt = TimedPacket::new(Timestamp::from_millis(5), vec![0u8; 60]);
//! let mut buf = Vec::new();
//! {
//!     let mut w = PcapWriter::new(&mut buf, 1500).unwrap();
//!     w.write_packet(&pkt).unwrap();
//! }
//! let mut r = PcapReader::new(&buf[..]).unwrap();
//! let got = r.next_packet().unwrap().unwrap();
//! assert_eq!(got.ts, pkt.ts);
//! assert_eq!(got.frame, pkt.frame);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Ingest code must degrade gracefully, never abort: panicking escape
// hatches are compile errors outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod fault;
pub mod format;
pub mod merge;
pub mod recover;
pub mod tap;
pub mod trace;

pub use arena::{Clip, PacketArena};
pub use fault::{Fault, FaultInjector};
pub use format::{PcapReader, PcapWriter, LINKTYPE_ETHERNET, MAX_RECORD_BYTES};
pub use merge::{merge_streams, merge_streams_with_stats, MergeStats};
pub use recover::{IngestStats, RecordView, RecoveringReader};
pub use tap::Tap;
pub use trace::{Trace, TraceMeta};

use ent_wire::Timestamp;

/// A captured packet: timestamp, captured bytes, and the original
/// on-the-wire length (which exceeds `frame.len()` when snaplen truncated
/// the capture).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPacket {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// Captured frame bytes (at most snaplen).
    pub frame: Vec<u8>,
    /// Original frame length on the wire.
    pub orig_len: u32,
}

impl TimedPacket {
    /// A packet captured in full.
    pub fn new(ts: Timestamp, frame: Vec<u8>) -> TimedPacket {
        let orig_len = frame.len() as u32;
        TimedPacket { ts, frame, orig_len }
    }

    /// Truncate the captured bytes to `snaplen`, preserving `orig_len`.
    pub fn truncate_to(&mut self, snaplen: usize) {
        if self.frame.len() > snaplen {
            self.frame.truncate(snaplen);
        }
    }

    /// True if the capture is shorter than the wire frame.
    pub fn is_truncated(&self) -> bool {
        (self.frame.len() as u32) < self.orig_len
    }
}

/// Errors arising from capture-file I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a pcap file (bad magic) or uses an unsupported
    /// link type / version.
    BadFormat(&'static str),
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadFormat(m) => write!(f, "bad pcap format: {m}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Result alias for capture-file operations.
pub type Result<T> = std::result::Result<T, PcapError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_packet_truncation() {
        let mut p = TimedPacket::new(Timestamp::ZERO, vec![0u8; 100]);
        assert!(!p.is_truncated());
        p.truncate_to(68);
        assert!(p.is_truncated());
        assert_eq!(p.frame.len(), 68);
        assert_eq!(p.orig_len, 100);
        p.truncate_to(200); // no-op
        assert_eq!(p.frame.len(), 68);
    }
}
