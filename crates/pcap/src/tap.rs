//! Capture-tap simulation: snaplen truncation and packet drops.
//!
//! The paper notes its kernel reported no drops yet analysis found TCP
//! receivers acknowledging data absent from the trace — i.e. silent capture
//! loss. [`Tap`] models a tap with a snaplen and a deterministic drop
//! pattern so analyses can be tested against imperfect captures.

use crate::TimedPacket;

/// A capture tap applying snaplen and optional periodic drops.
#[derive(Debug, Clone)]
pub struct Tap {
    snaplen: usize,
    /// Drop one packet in every `drop_period` (0 = no drops). Deterministic
    /// so tests are reproducible; real loss is bursty but a periodic model
    /// suffices to exercise the "acked data missing from trace" condition.
    drop_period: u64,
    seen: u64,
    dropped: u64,
}

impl Tap {
    /// A tap with the given snaplen and no loss.
    pub fn new(snaplen: usize) -> Tap {
        Tap {
            snaplen,
            drop_period: 0,
            seen: 0,
            dropped: 0,
        }
    }

    /// Enable dropping one packet per `period` packets observed.
    pub fn with_drop_period(mut self, period: u64) -> Tap {
        self.drop_period = period;
        self
    }

    /// The configured snaplen.
    pub fn snaplen(&self) -> usize {
        self.snaplen
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets offered so far (captured + dropped).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Offer one packet of `wire_len` bytes to the tap: returns the
    /// capture length (wire length clamped to snaplen), or `None` if the
    /// tap dropped it. This is the allocation-free core of
    /// [`Tap::capture`], used by the arena path to decide how many bytes
    /// to copy before any buffer exists.
    pub fn admit(&mut self, wire_len: usize) -> Option<usize> {
        self.seen += 1;
        if self.drop_period != 0 && self.seen.is_multiple_of(self.drop_period) {
            self.dropped += 1;
            return None;
        }
        Some(wire_len.min(self.snaplen))
    }

    /// Pass one packet through the tap: returns the (possibly truncated)
    /// captured packet, or `None` if the tap dropped it.
    pub fn capture(&mut self, mut pkt: TimedPacket) -> Option<TimedPacket> {
        let cap = self.admit(pkt.frame.len())?;
        pkt.frame.truncate(cap);
        Some(pkt)
    }

    /// Pass a whole stream through the tap.
    pub fn capture_all(&mut self, pkts: impl IntoIterator<Item = TimedPacket>) -> Vec<TimedPacket> {
        pkts.into_iter().filter_map(|p| self.capture(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ent_wire::Timestamp;

    fn pkt(len: usize) -> TimedPacket {
        TimedPacket::new(Timestamp::ZERO, vec![0u8; len])
    }

    #[test]
    fn snaplen_applied() {
        let mut tap = Tap::new(68);
        let got = tap.capture(pkt(1500)).unwrap();
        assert_eq!(got.frame.len(), 68);
        assert_eq!(got.orig_len, 1500);
        let got = tap.capture(pkt(40)).unwrap();
        assert_eq!(got.frame.len(), 40);
    }

    #[test]
    fn periodic_drops() {
        let mut tap = Tap::new(1500).with_drop_period(10);
        let kept = tap.capture_all((0..100).map(|_| pkt(100)));
        assert_eq!(kept.len(), 90);
        assert_eq!(tap.dropped(), 10);
        assert_eq!(tap.seen(), 100);
    }

    #[test]
    fn no_drops_by_default() {
        let mut tap = Tap::new(1500);
        let kept = tap.capture_all((0..50).map(|_| pkt(100)));
        assert_eq!(kept.len(), 50);
        assert_eq!(tap.dropped(), 0);
    }
}
