//! Classic libpcap file format (the `.pcap` produced by tcpdump on the
//! paper's FreeBSD 4.10 capture host).
//!
//! Layout: a 24-byte global header (magic 0xA1B2C3D4, microsecond
//! timestamps), then per-packet 16-byte record headers. Both byte orders are
//! accepted on read; writes are native-magic little-endian.

use crate::{PcapError, Result, TimedPacket};
use ent_wire::Timestamp;
use std::io::{Read, Write};

/// Magic for microsecond-resolution pcap, written in our byte order.
pub const MAGIC_USEC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET (DLT_EN10MB).
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Upper bound on a single record's captured bytes, regardless of the
/// snaplen claimed by the file header. A crafted header advertising a
/// multi-gigabyte snaplen must not let one 16-byte record header drive a
/// multi-gigabyte allocation; 256 KiB comfortably exceeds any real
/// Ethernet frame (even jumbo + encapsulation).
pub const MAX_RECORD_BYTES: u32 = 256 * 1024;

/// The per-record caplen bound implied by a file-header snaplen: at least
/// the classic 64 KiB (tolerating files whose header understates their
/// records), never more than [`MAX_RECORD_BYTES`].
pub(crate) fn record_limit(snaplen: u32) -> u32 {
    snaplen.clamp(65_535, MAX_RECORD_BYTES)
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header. `snaplen` is recorded in
    /// the header; packets are additionally truncated to it on write.
    pub fn new(mut out: W, snaplen: u32) -> Result<PcapWriter<W>> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
        // thiszone = 0, sigfigs = 0
        hdr[16..20].copy_from_slice(&snaplen.to_le_bytes());
        hdr[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        out.write_all(&hdr)?;
        Ok(PcapWriter {
            out,
            snaplen,
            packets_written: 0,
        })
    }

    /// Append one packet record, truncating to the file snaplen.
    pub fn write_packet(&mut self, pkt: &TimedPacket) -> Result<()> {
        let caplen = pkt.frame.len().min(self.snaplen as usize);
        let (sec, usec) = pkt.ts.to_sec_usec();
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&sec.to_le_bytes());
        rec[4..8].copy_from_slice(&usec.to_le_bytes());
        rec[8..12].copy_from_slice(&(caplen as u32).to_le_bytes());
        rec[12..16].copy_from_slice(&pkt.orig_len.to_le_bytes());
        self.out.write_all(&rec)?;
        self.out.write_all(pkt.frame.get(..caplen).unwrap_or(&[]))?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming pcap reader (accepts either byte order).
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    snaplen: u32,
    link_type: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, validating the global header.
    pub fn new(mut input: R) -> Result<PcapReader<R>> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_USEC => false,
            m if m == MAGIC_USEC.swap_bytes() => true,
            0xA1B2_3C4D | 0x4D3C_B2A1 => {
                return Err(PcapError::BadFormat("nanosecond pcap not supported"))
            }
            _ => return Err(PcapError::BadFormat("bad magic")),
        };
        let u32_at = |off: usize| {
            let b = match hdr.get(off..off.saturating_add(4)) {
                Some(&[a, b, c, d]) => [a, b, c, d],
                _ => [0; 4],
            };
            if swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        let link_type = u32_at(20);
        if link_type != LINKTYPE_ETHERNET {
            return Err(PcapError::BadFormat("only Ethernet link type supported"));
        }
        Ok(PcapReader {
            input,
            swapped,
            snaplen: u32_at(16),
            link_type,
        })
    }

    /// The snaplen recorded in the file header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The link type recorded in the file header.
    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_packet(&mut self) -> Result<Option<TimedPacket>> {
        let mut rec = [0u8; 16];
        match self.input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let u32_at = |off: usize| {
            let b = match rec.get(off..off.saturating_add(4)) {
                Some(&[a, b, c, d]) => [a, b, c, d],
                _ => [0; 4],
            };
            if self.swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        let sec = u32_at(0);
        let usec = u32_at(4);
        let caplen = u32_at(8);
        let orig_len = u32_at(12);
        if usec >= 1_000_000 {
            return Err(PcapError::BadFormat("microseconds out of range"));
        }
        if caplen > record_limit(self.snaplen) {
            return Err(PcapError::BadFormat("caplen exceeds snaplen"));
        }
        // `caplen` is bounded by MAX_RECORD_BYTES above, so this allocation
        // is small even when the file header advertises an absurd snaplen.
        let mut frame = vec![0u8; caplen as usize];
        self.input.read_exact(&mut frame)?;
        Ok(Some(TimedPacket {
            ts: Timestamp::from_sec_usec(sec, usec),
            frame,
            orig_len,
        }))
    }

    /// Drain all remaining records into a vector.
    pub fn read_all(&mut self) -> Result<Vec<TimedPacket>> {
        let mut v = Vec::new();
        while let Some(p) = self.next_packet()? {
            v.push(p);
        }
        Ok(v)
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<TimedPacket>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<TimedPacket> {
        (0..10)
            .map(|i| {
                TimedPacket::new(
                    Timestamp::from_micros(i * 1_000 + 999_999),
                    vec![i as u8; 60 + i as usize],
                )
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.packets_written(), 10);
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.snaplen(), 65_535);
        assert_eq!(r.link_type(), LINKTYPE_ETHERNET);
        let got = r.read_all().unwrap();
        assert_eq!(got, pkts);
    }

    #[test]
    fn snaplen_truncates_on_write() {
        let pkt = TimedPacket::new(Timestamp::ZERO, vec![7u8; 200]);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 68).unwrap();
        w.write_packet(&pkt).unwrap();
        w.finish().unwrap();
        let got = PcapReader::new(&buf[..]).unwrap().read_all().unwrap();
        assert_eq!(got[0].frame.len(), 68);
        assert_eq!(got[0].orig_len, 200);
        assert!(got[0].is_truncated());
    }

    #[test]
    fn swapped_byte_order_accepted() {
        // Hand-build a big-endian header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&1500u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        buf.extend_from_slice(&3u32.to_be_bytes()); // sec
        buf.extend_from_slice(&7u32.to_be_bytes()); // usec
        buf.extend_from_slice(&4u32.to_be_bytes()); // caplen
        buf.extend_from_slice(&4u32.to_be_bytes()); // origlen
        buf.extend_from_slice(&[9, 9, 9, 9]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts, Timestamp::from_sec_usec(3, 7));
        assert_eq!(p.frame, vec![9, 9, 9, 9]);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&buf[..]),
            Err(PcapError::BadFormat("bad magic"))
        ));
    }

    #[test]
    fn nanosecond_magic_rejected_distinctly() {
        let mut buf = [0u8; 24];
        buf[0..4].copy_from_slice(&0xA1B2_3C4Du32.to_le_bytes());
        assert!(matches!(
            PcapReader::new(&buf[..]),
            Err(PcapError::BadFormat("nanosecond pcap not supported"))
        ));
    }

    #[test]
    fn absurd_snaplen_cannot_drive_giant_allocation() {
        // A crafted header advertising snaplen u32::MAX must not let a
        // record claiming a ~3 GiB caplen reach the allocator.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // sec
        buf.extend_from_slice(&0u32.to_le_bytes()); // usec
        buf.extend_from_slice(&0xC000_0000u32.to_le_bytes()); // caplen
        buf.extend_from_slice(&0xC000_0000u32.to_le_bytes()); // origlen
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::BadFormat("caplen exceeds snaplen"))
        ));
    }

    #[test]
    fn record_limit_clamps_both_ways() {
        assert_eq!(record_limit(68), 65_535);
        assert_eq!(record_limit(65_535), 65_535);
        assert_eq!(record_limit(100_000), 100_000);
        assert_eq!(record_limit(u32::MAX), MAX_RECORD_BYTES);
    }

    #[test]
    fn corrupt_usec_rejected() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, 100).unwrap();
            w.write_packet(&TimedPacket::new(Timestamp::ZERO, vec![0u8; 4]))
                .unwrap();
        }
        // Overwrite usec with 2_000_000.
        buf[28..32].copy_from_slice(&2_000_000u32.to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn truncated_final_record_is_io_error() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, 100).unwrap();
            w.write_packet(&TimedPacket::new(Timestamp::ZERO, vec![0u8; 40]))
                .unwrap();
        }
        buf.truncate(buf.len() - 10); // cut payload short
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::Io(_))));
    }

    #[test]
    fn iterator_interface() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap();
        let r = PcapReader::new(&buf[..]).unwrap();
        let got: Vec<_> = r.map(|p| p.unwrap()).collect();
        assert_eq!(got.len(), 10);
    }
}
