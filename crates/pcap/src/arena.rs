//! Packet arena: the zero-copy staging buffer behind trace generation.
//!
//! The generator used to materialize every packet as its own
//! `TimedPacket { ts, frame: Vec<u8> }`, millions of small heap
//! allocations per trace that dominated generation wall time. A
//! [`PacketArena`] instead stores all frame bytes back-to-back in one
//! growing buffer and represents each packet as a `(ts, offset, len)`
//! record. Sessions append frames via [`PacketArena::frame_buf`] +
//! [`PacketArena::commit`]; the trace assembly then orders records with
//! [`PacketArena::sort_records`] and materializes the surviving
//! post-[`Tap`](crate::Tap) packets in one pass.
//!
//! The arena also owns the monitoring-window cutoff that used to be a
//! post-hoc `retain`: [`PacketArena::admit`] rejects packets timestamped
//! at or past the window limit *before* their bytes are built, while
//! still tallying them (for [`Clip::Counted`] sites) so logical
//! emission counts match the old emit-then-retain pipeline.

use crate::{Tap, TimedPacket};
use ent_wire::Timestamp;

/// How an out-of-window packet at an emission site is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clip {
    /// Tally the packet as logically emitted (the legacy pipeline pushed
    /// it and a later `retain` removed it): it still appears in the
    /// `gen_synth` observability counts.
    Counted,
    /// Drop silently (the legacy site filtered these packets before they
    /// ever reached the trace buffer).
    Silent,
}

/// One staged packet: timestamp plus the frame's span in the byte buffer.
/// `cap` is the captured length — equal to `len` until
/// [`PacketArena::apply_tap`] clamps it to the snaplen. `label` is the
/// ground-truth tag active at commit time (see
/// [`PacketArena::set_label`]); it rides with the record through
/// [`PacketArena::sort_records`] and [`PacketArena::apply_tap`] but
/// never enters the frame bytes.
#[derive(Debug, Clone, Copy)]
struct Rec {
    ts: Timestamp,
    off: u64,
    len: u32,
    cap: u32,
    label: u32,
}

/// Arena of trace packets: one contiguous byte buffer plus per-packet
/// `(ts, offset, len)` records.
#[derive(Debug, Clone)]
pub struct PacketArena {
    buf: Vec<u8>,
    recs: Vec<Rec>,
    /// Monitoring-window limit: packets with `ts >= limit` are refused.
    limit: Timestamp,
    /// Start of the frame currently being built in `buf`.
    watermark: u64,
    /// Wire bytes of all committed records.
    wire_bytes: u64,
    /// Out-of-window packets tallied by [`Clip::Counted`] admissions.
    ghost_packets: u64,
    /// Wire bytes of those tallied out-of-window packets.
    ghost_bytes: u64,
    /// Ground-truth label stamped onto subsequently committed records.
    cur_label: u32,
}

impl PacketArena {
    /// An arena admitting packets strictly before `limit`.
    pub fn new(limit: Timestamp) -> PacketArena {
        PacketArena {
            buf: Vec::new(),
            recs: Vec::new(),
            limit,
            watermark: 0,
            wire_bytes: 0,
            ghost_packets: 0,
            ghost_bytes: 0,
            cur_label: 0,
        }
    }

    /// An arena with no window limit (admits everything).
    pub fn unbounded() -> PacketArena {
        PacketArena::new(Timestamp::from_micros(u64::MAX))
    }

    /// Change the monitoring-window limit (for arena reuse across traces:
    /// [`PacketArena::clear`] keeps the old limit).
    pub fn set_limit(&mut self, limit: Timestamp) {
        self.limit = limit;
    }

    /// Set the ground-truth label stamped onto every record committed
    /// from now on. Label `0` (the default) means unlabeled/benign;
    /// scenario packs use nonzero tags for attack-class traffic. The
    /// label lives on the record, not in the frame bytes, so setting it
    /// never changes emitted bytes or RNG draw order.
    pub fn set_label(&mut self, label: u32) {
        self.cur_label = label;
    }

    /// The ground-truth label currently being stamped onto commits.
    pub fn current_label(&self) -> u32 {
        self.cur_label
    }

    /// Should a packet at `ts` be built at all? `false` means skip frame
    /// construction entirely; `wire_len` is what the frame *would* have
    /// occupied on the wire, tallied for [`Clip::Counted`] sites so
    /// logical emission counts match the legacy emit-then-retain flow.
    pub fn admit(&mut self, ts: Timestamp, clip: Clip, wire_len: u64) -> bool {
        if ts < self.limit {
            return true;
        }
        if clip == Clip::Counted {
            self.ghost_packets += 1;
            self.ghost_bytes += wire_len;
        }
        false
    }

    /// The byte buffer, positioned for appending one frame. Callers
    /// extend it (e.g. via `ent_wire::build::tcp_frame_into`) then call
    /// [`PacketArena::commit`] with the packet timestamp.
    pub fn frame_buf(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Record the frame appended since the last commit as one packet.
    pub fn commit(&mut self, ts: Timestamp) {
        let off = self.watermark;
        let end = self.buf.len() as u64;
        let frame_bytes = end.saturating_sub(off);
        self.watermark = end;
        self.wire_bytes += frame_bytes;
        self.recs.push(Rec {
            ts,
            off,
            len: frame_bytes as u32,
            cap: frame_bytes as u32,
            label: self.cur_label,
        });
    }

    /// Convenience: admit + append a prebuilt frame + commit.
    pub fn push_frame(&mut self, ts: Timestamp, clip: Clip, frame: &[u8]) {
        if !self.admit(ts, clip, frame.len() as u64) {
            return;
        }
        self.buf.extend_from_slice(frame);
        self.commit(ts);
    }

    /// Committed (in-window) packets.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True if no packets were committed.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Logical packets emitted: committed plus counted out-of-window.
    pub fn logical_len(&self) -> u64 {
        self.recs.len() as u64 + self.ghost_packets
    }

    /// Logical wire bytes emitted (same tail included).
    pub fn logical_wire_bytes(&self) -> u64 {
        self.wire_bytes + self.ghost_bytes
    }

    /// Order records by `(timestamp, emission offset)`. The offset
    /// tie-break reproduces the legacy pipeline's stable sort exactly:
    /// equal-timestamp packets stay in emission order, and keys are
    /// unique so the result is deterministic. The *stable* algorithm is
    /// deliberate — the record list is a concatenation of per-session
    /// ascending runs, which merge sort detects and exploits; pattern-
    /// defeating quicksort measures ~2x slower on this shape.
    pub fn sort_records(&mut self) {
        self.recs.sort_by_key(|r| (r.ts, r.off));
    }

    /// Wire bytes of the committed (in-window) records. After
    /// [`PacketArena::apply_tap`] this covers only the records the tap
    /// kept — exactly the wire volume of a materialized trace.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Run every record through a capture tap *in place*: snaplen clamps
    /// the captured length, injected drops remove the record. No frame
    /// bytes move. Returns the total captured (post-snaplen) bytes.
    /// Call after [`PacketArena::sort_records`] so the tap's periodic
    /// drop counter walks the trace in time order.
    pub fn apply_tap(&mut self, tap: &mut Tap) -> u64 {
        let mut captured = 0u64;
        let mut dropped_wire = 0u64;
        self.recs.retain_mut(|r| match tap.admit(r.len as usize) {
            Some(cap) => {
                r.cap = cap as u32;
                captured += cap as u64;
                true
            }
            None => {
                dropped_wire += r.len as u64;
                false
            }
        });
        self.wire_bytes -= dropped_wire;
        captured
    }

    /// Borrowed views of the captured packets in record order:
    /// `(timestamp, captured frame bytes, original wire length)`. The
    /// frame slice reflects any [`PacketArena::apply_tap`] snaplen clamp.
    pub fn captured_frames(&self) -> impl Iterator<Item = (Timestamp, &[u8], u32)> + '_ {
        self.recs.iter().filter_map(|r| {
            let start = r.off as usize;
            self.buf
                .get(start..start.saturating_add(r.cap as usize))
                .map(|frame| (r.ts, frame, r.len))
        })
    }

    /// Like [`PacketArena::captured_frames`] but with each record's
    /// ground-truth label appended:
    /// `(timestamp, captured frame bytes, original wire length, label)`.
    pub fn labeled_frames(&self) -> impl Iterator<Item = (Timestamp, &[u8], u32, u32)> + '_ {
        self.recs.iter().filter_map(|r| {
            let start = r.off as usize;
            self.buf
                .get(start..start.saturating_add(r.cap as usize))
                .map(|frame| (r.ts, frame, r.len, r.label))
        })
    }

    /// Histogram of record labels in ascending label order. The counts
    /// sum to [`PacketArena::len`]; conservation through sort/tap is
    /// what the scenario-pack property tests pin.
    pub fn label_counts(&self) -> Vec<(u32, u64)> {
        let mut counts = std::collections::BTreeMap::new();
        for r in &self.recs {
            *counts.entry(r.label).or_insert(0u64) += 1;
        }
        counts.into_iter().collect()
    }

    /// Materialize the captured packets (post-[`PacketArena::apply_tap`])
    /// as owned [`TimedPacket`]s, one bounded copy per packet.
    pub fn captured_packets(&self) -> Vec<TimedPacket> {
        self.captured_frames()
            .map(|(ts, frame, orig_len)| TimedPacket {
                ts,
                frame: frame.to_vec(),
                orig_len,
            })
            .collect()
    }

    /// Materialize the packets in record order through a capture tap
    /// (snaplen clamp + injected drops), one bounded copy per packet.
    pub fn capture(&self, tap: &mut Tap) -> Vec<TimedPacket> {
        let mut out = Vec::with_capacity(self.recs.len());
        for r in &self.recs {
            let Some(cap) = tap.admit(r.len as usize) else {
                continue;
            };
            let start = r.off as usize;
            let Some(frame) = self.buf.get(start..start.saturating_add(cap)) else {
                continue;
            };
            out.push(TimedPacket {
                ts: r.ts,
                frame: frame.to_vec(),
                orig_len: r.len,
            });
        }
        out
    }

    /// Materialize every packet in record order, full frames (no tap).
    pub fn to_packets(&self) -> Vec<TimedPacket> {
        let mut tap = Tap::new(usize::MAX);
        self.capture(&mut tap)
    }

    /// Drop all packets and bytes, keeping allocated capacity (and the
    /// window limit) for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.recs.clear();
        self.watermark = 0;
        self.wire_bytes = 0;
        self.ghost_packets = 0;
        self.ghost_bytes = 0;
        self.cur_label = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn commit_records_spans_and_counts() {
        let mut a = PacketArena::unbounded();
        a.frame_buf().extend_from_slice(&[1, 2, 3]);
        a.commit(ts(5));
        a.frame_buf().extend_from_slice(&[4, 5]);
        a.commit(ts(2));
        assert_eq!(a.len(), 2);
        assert_eq!(a.logical_len(), 2);
        assert_eq!(a.logical_wire_bytes(), 5);
        let pkts = a.to_packets();
        assert_eq!(pkts[0].frame, vec![1, 2, 3]);
        assert_eq!(pkts[0].ts, ts(5));
        assert_eq!(pkts[1].frame, vec![4, 5]);
    }

    #[test]
    fn sort_orders_by_ts_then_emission() {
        let mut a = PacketArena::unbounded();
        for (t, b) in [(9u64, 0u8), (3, 1), (9, 2), (1, 3)] {
            a.frame_buf().push(b);
            a.commit(ts(t));
        }
        a.sort_records();
        let order: Vec<u8> = a.to_packets().iter().map(|p| p.frame[0]).collect();
        // Equal ts=9 packets keep emission order (0 before 2).
        assert_eq!(order, vec![3, 1, 0, 2]);
    }

    #[test]
    fn window_limit_counts_or_silences_ghosts() {
        let mut a = PacketArena::new(ts(100));
        assert!(a.admit(ts(99), Clip::Counted, 60));
        a.frame_buf().extend_from_slice(&[0; 60]);
        a.commit(ts(99));
        assert!(!a.admit(ts(100), Clip::Counted, 70));
        assert!(!a.admit(ts(500), Clip::Silent, 80));
        assert_eq!(a.len(), 1);
        assert_eq!(a.logical_len(), 2, "counted ghost included");
        assert_eq!(a.logical_wire_bytes(), 130, "ghost bytes included");
    }

    #[test]
    fn capture_applies_snaplen_and_drops() {
        let mut a = PacketArena::unbounded();
        for i in 0..10u8 {
            a.frame_buf().extend_from_slice(&[i; 100]);
            a.commit(ts(i as u64));
        }
        let mut tap = Tap::new(68).with_drop_period(5);
        let pkts = a.capture(&mut tap);
        assert_eq!(pkts.len(), 8, "every 5th packet dropped");
        assert!(pkts.iter().all(|p| p.frame.len() == 68 && p.orig_len == 100));
        assert_eq!(tap.dropped(), 2);
    }

    #[test]
    fn apply_tap_clamps_in_place_and_drops() {
        let mut a = PacketArena::unbounded();
        for i in 0..10u8 {
            a.frame_buf().extend_from_slice(&[i; 100]);
            a.commit(ts(i as u64));
        }
        let mut tap = Tap::new(68).with_drop_period(5);
        let captured = a.apply_tap(&mut tap);
        assert_eq!(a.len(), 8, "every 5th packet dropped");
        assert_eq!(captured, 8 * 68);
        assert_eq!(a.wire_bytes(), 8 * 100, "dropped wire bytes removed");
        let views: Vec<_> = a.captured_frames().collect();
        assert_eq!(views.len(), 8);
        assert!(views.iter().all(|(_, f, orig)| f.len() == 68 && *orig == 100));
        // Materialized form agrees with the borrowed views.
        let pkts = a.captured_packets();
        assert_eq!(pkts.len(), 8);
        assert!(pkts.iter().all(|p| p.frame.len() == 68 && p.orig_len == 100));
    }

    #[test]
    fn labels_stamp_at_commit_and_reset_on_clear() {
        let mut a = PacketArena::unbounded();
        a.push_frame(ts(1), Clip::Counted, &[1; 4]);
        a.set_label(7);
        assert_eq!(a.current_label(), 7);
        a.push_frame(ts(2), Clip::Counted, &[2; 4]);
        a.frame_buf().extend_from_slice(&[3; 4]);
        a.commit(ts(3));
        a.set_label(0);
        a.push_frame(ts(4), Clip::Counted, &[4; 4]);
        let labels: Vec<u32> = a.labeled_frames().map(|(_, _, _, l)| l).collect();
        assert_eq!(labels, vec![0, 7, 7, 0]);
        assert_eq!(a.label_counts(), vec![(0, 2), (7, 2)]);
        a.set_label(9);
        a.clear();
        a.push_frame(ts(1), Clip::Counted, &[5; 4]);
        assert_eq!(a.label_counts(), vec![(0, 1)], "clear resets the label");
    }

    #[test]
    fn labels_ride_through_sort_and_tap() {
        let mut a = PacketArena::unbounded();
        // Frame byte i encodes the record's label so identity survives
        // reordering: record i carries label (i % 3).
        for i in 0..30u8 {
            a.set_label(u32::from(i % 3));
            // Descending timestamps force a full reorder.
            a.push_frame(ts(1_000 - u64::from(i)), Clip::Counted, &[i; 90]);
        }
        a.sort_records();
        for (_, frame, _, label) in a.labeled_frames() {
            assert_eq!(label, u32::from(frame[0] % 3), "label moved with its record");
        }
        assert_eq!(a.label_counts(), vec![(0, 10), (1, 10), (2, 10)]);
        let mut tap = Tap::new(68).with_drop_period(5);
        a.apply_tap(&mut tap);
        assert_eq!(a.len(), 24);
        let total: u64 = a.label_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 24, "no orphaned or duplicated labels after tap");
        for (_, frame, _, label) in a.labeled_frames() {
            assert_eq!(label, u32::from(frame[0] % 3), "snaplen clamp keeps labels");
        }
    }

    #[test]
    fn push_frame_roundtrip_and_clear() {
        let mut a = PacketArena::new(ts(10));
        a.push_frame(ts(1), Clip::Counted, &[7; 9]);
        a.push_frame(ts(50), Clip::Counted, &[8; 4]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.logical_len(), 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.logical_len(), 0);
        assert_eq!(a.logical_wire_bytes(), 0);
        // Reusable after clear, same limit.
        a.push_frame(ts(2), Clip::Counted, &[9; 3]);
        assert_eq!(a.to_packets()[0].frame, vec![9, 9, 9]);
    }
}
