//! `entreport` — end-to-end reproduction driver.
//!
//! Subcommands:
//! * `study`     — generate all five datasets, run every analysis, print
//!   every table and figure of the paper (optionally export CSVs).
//! * `generate`  — write one synthetic trace as a pcap file.
//! * `analyze`   — analyze a pcap file (ours or any Ethernet capture).
//! * `monitor`   — resident monitor mode: stream a capture through the
//!   pipeline emitting rolling per-epoch reports, with optional
//!   crash-safe checkpoints and bounded-state budgets.
//! * `anonymize` — prefix-preserving anonymization of a pcap file.
//! * `scaling`   — run the study once per shard count and export the
//!   multi-shard scaling curve (`BENCH_scaling.json`): the determinism
//!   gate (identical events signature at every shard count) plus the
//!   ingest-wall speedup curve.
//! * `packs`     — run the labeled scenario packs (base mix plus
//!   adversarial and modern-variant actors), score scanner removal
//!   against the ground-truth labels (precision/recall/F1), measure
//!   per-pack trace complexity (header-symbol entropy), and export the
//!   `ent-bench-packs/1` scoring document (`BENCH_packs.json`).
//! * `obs-check` — validate a bench export (pipeline, monitor, scaling
//!   or packs schema).
//! * `bench-compare` — gate a candidate bench export against a committed
//!   baseline (exact event/byte equality, one-sided wall tolerance; for
//!   scaling documents, entry-for-entry determinism plus the speedup
//!   floor on machines with at least 4 cores).
#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use ent_core::metrics::{
    bench_json, compare_bench_json, monitor_bench_json, packs_bench_json, scaling_bench_json,
    validate_bench_json, BenchContext, MonitorBenchContext, PackBenchEntry, PacksBenchContext,
    ScalingContext, ScalingEntry,
};
use ent_core::run::{run_datasets, StudyConfig};
use ent_core::{run_pack, PackStudyConfig};
use ent_core::study::build_report;
use ent_core::{
    capture_meta, drive_capture, Checkpoint, Monitor, MonitorConfig, PipelineConfig,
    PipelineMetrics,
};
use ent_gen::build::{build_site, generate_trace};
use ent_gen::dataset::{all_datasets, dataset};
use ent_gen::GenConfig;
use ent_pcap::{Trace, TraceMeta};
use ent_wire::Timestamp;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

/// Unwrap a CLI-level result or exit with a message. Failures here are
/// user-environment errors (bad path, full disk, truncated file), not bugs.
fn or_die<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("entreport: {what}: {e}");
        std::process::exit(1);
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  entreport study [--scale S] [--seed N] [--threads N] [--shards N] [--datasets D0,D3] [--only 'table 9'] [--csv-dir DIR] [--keep-scanners] [--bench-json FILE.json]
  entreport scaling [--scale S] [--seed N] [--threads N] [--shard-counts 0,1,2,4,8] [--floor 1.6] [--datasets D0,D3] [--out FILE.json]
  entreport packs [--scale S] [--seed N] [--threads N] [--shards N] [--packs base,sweep] [--precision-floor 0.9] [--recall-floor 0.9] [--out FILE.json]
  entreport generate --dataset D0 --subnet 3 [--pass 1] [--scale S] [--seed N] --out FILE.pcap
  entreport analyze FILE.pcap [--subnet N] [--name D0]
  entreport monitor FILE.pcap [--epoch-secs 300] [--checkpoint FILE.ckpt] [--max-conns N] [--max-pending N] [--stop-after-epochs N] [--name NAME] [--keep-scanners] [--bench-json FILE.json]
  entreport anonymize IN.pcap OUT.pcap --key SEED
  entreport obs-check FILE.json
  entreport bench-compare BASELINE.json CANDIDATE.json [--tolerance 0.25]"
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut a = Args {
        positional: Vec::new(),
        flags: Default::default(),
        switches: Default::default(),
    };
    let mut it = raw.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    if let Some(v) = it.next() {
                        a.flags.insert(name.to_string(), v.clone());
                    }
                }
                _ => {
                    a.switches.insert(name.to_string());
                }
            }
        } else {
            a.positional.push(arg.clone());
        }
    }
    a
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = parse_args(&raw[1..]);
    match cmd.as_str() {
        "study" => cmd_study(&args),
        "scaling" => cmd_scaling(&args),
        "packs" => cmd_packs(&args),
        "generate" => cmd_generate(&args),
        "analyze" => cmd_analyze(&args),
        "monitor" => cmd_monitor(&args),
        "anonymize" => cmd_anonymize(&args),
        "obs-check" => cmd_obs_check(&args),
        "bench-compare" => cmd_bench_compare(&args),
        _ => usage(),
    }
}

fn gen_config(args: &Args) -> GenConfig {
    GenConfig {
        scale: args
            .flags
            .get("scale")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.01),
        seed: args
            .flags
            .get("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1),
        hosts_per_subnet: args.flags.get("hosts").and_then(|s| s.parse().ok()),
    }
}

fn cmd_study(args: &Args) -> ExitCode {
    let threads: usize = args
        .flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // An explicit --shards (including `--shards 0`, the serial escape
    // hatch) always wins; only when the flag is absent does the run
    // auto-shard the cores a pinned --threads leaves idle. Shard count is
    // a bench-comparability key, so gate scripts pass --shards 0.
    let shards = match args.flags.get("shards").and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => ent_core::auto_shards(
            threads,
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ),
    };
    let config = StudyConfig {
        gen: gen_config(args),
        pipeline: PipelineConfig {
            keep_scanners: args.switches.contains("keep-scanners"),
            shards,
            ..Default::default()
        },
        threads,
    };
    let wanted: Option<Vec<String>> = args
        .flags
        .get("datasets")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
    let specs: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| {
            wanted
                .as_ref()
                .map(|w| w.iter().any(|x| x == d.name))
                .unwrap_or(true)
        })
        .collect();
    eprintln!(
        "running study: scale={} seed={} datasets={:?}",
        config.gen.scale,
        config.gen.seed,
        specs.iter().map(|d| d.name).collect::<Vec<_>>()
    );
    // One global work queue across every dataset: no worker idles at a
    // dataset boundary waiting for the previous dataset's stragglers.
    let t0 = std::time::Instant::now();
    let studies = run_datasets(&specs, &config);
    let study_wall_ns = t0.elapsed().as_nanos() as u64;
    let mut total = PipelineMetrics::default();
    for da in &studies {
        let m = da.pipeline_metrics();
        eprintln!(
            "  {}: {} traces, {} packets, {:.1}s worker time",
            da.spec.name,
            da.traces.len(),
            m.packets(),
            m.trace_wall_ns as f64 / 1e9
        );
        total.absorb(&m);
    }
    eprintln!(
        "study wall {:.1}s ({:.0} packets/s worker throughput)",
        study_wall_ns as f64 / 1e9,
        total.packets_per_sec()
    );
    let mut report = build_report(&studies);
    if let Some(only) = args.flags.get("only") {
        let needle = only.to_ascii_lowercase();
        report
            .tables
            .retain(|t| t.title.to_ascii_lowercase().contains(&needle));
        report
            .figures
            .retain(|f| f.title.to_ascii_lowercase().contains(&needle));
        report
            .notes
            .retain(|n| n.to_ascii_lowercase().contains(&needle));
    }
    println!("{}", report.render());
    if !args.flags.contains_key("only") {
        println!("{}", total.stage_table("Pipeline stage metrics (study total)").render());
    }
    if let Some(path) = args.flags.get("bench-json") {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.threads
        };
        let ctx = BenchContext {
            scale: config.gen.scale,
            seed: config.gen.seed,
            threads,
            shards: config.pipeline.shards,
            study_wall_ns,
            datasets: studies
                .iter()
                .map(|da| {
                    let m = da.pipeline_metrics();
                    (
                        da.spec.name.to_string(),
                        da.traces.len() as u64,
                        m.trace_wall_ns,
                        m.packets(),
                        m.bytes(),
                    )
                })
                .collect(),
        };
        let doc = bench_json(&ctx, &total);
        or_die(validate_bench_json(&doc), "bench json self-check");
        or_die(std::fs::write(path, &doc), "write bench json");
        eprintln!("pipeline metrics written to {path}");
    }
    if let Some(dir) = args.flags.get("csv-dir") {
        or_die(std::fs::create_dir_all(dir), "create csv dir");
        for t in &report.tables {
            let fname = slug(&t.title);
            or_die(std::fs::write(format!("{dir}/{fname}.csv"), t.to_csv()), "write csv");
        }
        for f in &report.figures {
            let fname = slug(&f.title);
            or_die(std::fs::write(format!("{dir}/{fname}.csv"), f.to_csv(64)), "write csv");
        }
        eprintln!("CSV exports written to {dir}/");
    }
    ExitCode::SUCCESS
}

fn slug(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .trim_matches('_')
        .chars()
        .take(48)
        .collect()
}

/// Run the study once per shard count (same scale/seed/threads) and
/// export the scaling curve as an `ent-bench-scaling/1` document. The
/// built-in self-check is the determinism gate: every shard count must
/// produce the identical events signature, packet and trace totals, or
/// the command fails. Defaults are the gate configuration: scale 0.01,
/// seed 2005, 1 worker thread, shard counts 0 (serial), 1, 2, 4, 8.
fn cmd_scaling(args: &Args) -> ExitCode {
    let mut gen = gen_config(args);
    if !args.flags.contains_key("seed") {
        gen.seed = 2005; // the scaling gate's seed, not `study`'s default
    }
    let threads: usize = args
        .flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let floor: f64 = args
        .flags
        .get("floor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.6);
    let counts: Vec<usize> = match args.flags.get("shard-counts") {
        Some(s) => {
            let parsed: Option<Vec<usize>> =
                s.split(',').map(|x| x.trim().parse().ok()).collect();
            match parsed {
                Some(v) if !v.is_empty() => v,
                _ => {
                    eprintln!("entreport: bad --shard-counts {s:?} (want e.g. 0,1,2,4,8)");
                    return ExitCode::from(2);
                }
            }
        }
        None => vec![0, 1, 2, 4, 8],
    };
    let wanted: Option<Vec<String>> = args
        .flags
        .get("datasets")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
    let specs: Vec<_> = all_datasets()
        .into_iter()
        .filter(|d| {
            wanted
                .as_ref()
                .map(|w| w.iter().any(|x| x == d.name))
                .unwrap_or(true)
        })
        .collect();
    eprintln!(
        "scaling curve: scale={} seed={} threads={threads} shard counts {counts:?}",
        gen.scale, gen.seed
    );
    let mut entries = Vec::new();
    for &shards in &counts {
        let config = StudyConfig {
            gen,
            pipeline: PipelineConfig {
                shards,
                ..Default::default()
            },
            threads,
        };
        let studies = run_datasets(&specs, &config);
        let mut total = PipelineMetrics::default();
        for da in &studies {
            total.absorb(&da.pipeline_metrics());
        }
        eprintln!(
            "  shards={shards}: ingest wall {:.1} ms, {} packets, signature {:016x}",
            total.shard_ingest.wall_ns as f64 / 1e6,
            total.packets(),
            total.events_signature_hash(),
        );
        entries.push(ScalingEntry {
            shards,
            ingest_wall_ns: total.shard_ingest.wall_ns,
            frame_parse_wall_ns: total.frame_parse.wall_ns,
            flow_ingest_wall_ns: total.flow_ingest.wall_ns,
            packets: total.packets(),
            traces: total.traces,
            peak_open_conns: total.peak_open_conns,
            signature_hash: total.events_signature_hash(),
        });
    }
    let ctx = ScalingContext {
        scale: gen.scale,
        seed: gen.seed,
        threads,
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        floor,
        entries,
    };
    let doc = scaling_bench_json(&ctx);
    // The self-check is the determinism half of the gate: it fails if any
    // shard count produced a different signature or packet total.
    or_die(validate_bench_json(&doc), "scaling determinism self-check");
    match args.flags.get("out") {
        Some(path) => {
            or_die(std::fs::write(path, &doc), "write scaling json");
            eprintln!("scaling curve written to {path}");
        }
        None => print!("{doc}"),
    }
    ExitCode::SUCCESS
}

/// Default precision floor for the pack scoring gate: of the connections
/// scanner removal flags, at least this share must belong to a labeled
/// scan source (attack actors built to *evade* the heuristic — floods,
/// brute force, exfiltration — must not be misflagged as scanners).
const PACK_PRECISION_FLOOR: f64 = 0.9;

/// Default recall floor for the pack scoring gate: at least this share of
/// a pack's labeled scan-source connections must be flagged.
const PACK_RECALL_FLOOR: f64 = 0.9;

/// Run every scenario pack (or a `--packs` subset; `base` is always
/// included — it is the scoring anchor), score scanner removal against
/// the generator's ground-truth labels, and export the scored document as
/// `ent-bench-packs/1`. The built-in self-check is the scoring gate:
/// precision/recall floors per pack, plus per-pack header entropy that
/// must be distinguishable from the base mix. Defaults are the gate
/// configuration: scale 0.01, seed 2005, 1 worker thread, serial shards.
fn cmd_packs(args: &Args) -> ExitCode {
    let mut gen = gen_config(args);
    if !args.flags.contains_key("seed") {
        gen.seed = 2005; // the pack gate's seed, matching `scaling`
    }
    let threads: usize = args
        .flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let shards: usize = args
        .flags
        .get("shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let precision_floor: f64 = args
        .flags
        .get("precision-floor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(PACK_PRECISION_FLOOR);
    let recall_floor: f64 = args
        .flags
        .get("recall-floor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(PACK_RECALL_FLOOR);
    let wanted: Option<Vec<String>> = args
        .flags
        .get("packs")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
    let names: Vec<&str> = ent_gen::PACK_NAMES
        .iter()
        .copied()
        .filter(|n| {
            *n == "base"
                || wanted
                    .as_ref()
                    .map(|w| w.iter().any(|x| x == n))
                    .unwrap_or(true)
        })
        .collect();
    let config = PackStudyConfig {
        gen,
        pipeline: PipelineConfig {
            shards,
            ..Default::default()
        },
        threads,
    };
    eprintln!(
        "scenario packs: scale={} seed={} threads={threads} shards={shards} packs={names:?}",
        gen.scale, gen.seed
    );
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "pack", "traces", "packets", "attack", "sources", "tp", "fp", "fn", "prec",
        "recall", "f1", "H(sym)", "H(pair)"
    );
    let mut entries = Vec::new();
    for name in names {
        let Some(pack) = ent_gen::packs::pack(name) else {
            eprintln!("entreport: unknown pack {name:?} (want one of {:?})", ent_gen::PACK_NAMES);
            return ExitCode::from(2);
        };
        let report = run_pack(&pack, &config);
        println!(
            "{:<10} {:>7} {:>9} {:>8} {:>8} {:>5} {:>5} {:>5} {:>7.4} {:>7.4} {:>7.4} {:>9.4} {:>9.4}",
            report.name,
            report.traces,
            report.packets,
            report.attack_packets,
            report.scan_sources,
            report.score.true_pos,
            report.score.false_pos,
            report.score.false_neg,
            report.score.precision(),
            report.score.recall(),
            report.score.f1(),
            report.entropy_nontemporal,
            report.entropy_temporal,
        );
        entries.push(PackBenchEntry {
            name: report.name.clone(),
            traces: report.traces,
            packets: report.packets,
            attack_packets: report.attack_packets,
            scan_sources: report.scan_sources,
            flagged: report.flagged,
            true_pos: report.score.true_pos,
            false_pos: report.score.false_pos,
            false_neg: report.score.false_neg,
            precision: report.score.precision(),
            recall: report.score.recall(),
            f1: report.score.f1(),
            entropy_nontemporal: report.entropy_nontemporal,
            entropy_temporal: report.entropy_temporal,
        });
    }
    let ctx = PacksBenchContext {
        scale: gen.scale,
        seed: gen.seed,
        threads,
        shards,
        precision_floor,
        recall_floor,
        packs: entries,
    };
    let doc = packs_bench_json(&ctx);
    // The self-check is the scoring gate: it fails if any pack misses a
    // floor or an adversarial pack is indistinguishable from base.
    or_die(validate_bench_json(&doc), "pack scoring self-check");
    match args.flags.get("out") {
        Some(path) => {
            or_die(std::fs::write(path, &doc), "write packs json");
            eprintln!("pack scores written to {path}");
        }
        None => print!("{doc}"),
    }
    ExitCode::SUCCESS
}

fn cmd_generate(args: &Args) -> ExitCode {
    let Some(name) = args.flags.get("dataset") else {
        return usage();
    };
    let Some(spec) = dataset(name) else {
        eprintln!("unknown dataset {name} (use D0..D4)");
        return ExitCode::from(2);
    };
    let subnet: u16 = args
        .flags
        .get("subnet")
        .and_then(|s| s.parse().ok())
        .unwrap_or(spec.monitored.start);
    let pass: u8 = args
        .flags
        .get("pass")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let Some(out) = args.flags.get("out") else {
        return usage();
    };
    let config = gen_config(args);
    let (site, wan) = build_site(&spec, &config);
    let trace = generate_trace(&site, &wan, &spec, subnet, pass, &config);
    let f = or_die(File::create(out), "create output file");
    or_die(trace.write_pcap(BufWriter::new(f)), "write pcap");
    eprintln!(
        "wrote {}: {} packets, {} wire bytes, snaplen {}",
        out,
        trace.packets.len(),
        trace.wire_bytes(),
        trace.meta.snaplen
    );
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return usage();
    };
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let meta = TraceMeta {
        dataset: args
            .flags
            .get("name")
            .map(|s| s.as_str().into())
            .unwrap_or_else(|| "pcap".into()),
        subnet: args
            .flags
            .get("subnet")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
        pass: 1,
        duration: Timestamp::from_secs(3_600),
        snaplen: 1500,
        link_capacity_bps: 100_000_000,
    };
    // Salvage everything readable from a possibly damaged capture; only an
    // unusable global header is fatal.
    let (mut trace, capture_stats) = match Trace::read_pcap_recovering(&data, meta) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {}", ent_core::AnalysisError::from(e));
            return ExitCode::FAILURE;
        }
    };
    // Size the utilization bins to the capture's actual span. Binning is
    // relative to the first packet wherever its clock starts (epoch or
    // zero), so timestamps themselves need no rewriting.
    if let (Some(first), Some(last)) = (
        trace.packets.first().map(|p| p.ts),
        trace.packets.last().map(|p| p.ts),
    ) {
        trace.meta.duration =
            Timestamp::from_micros(last.saturating_micros_since(first) + 1_000_000);
    }
    let mut a = ent_core::analyze_trace(&trace, &PipelineConfig::default());
    a.health.capture = capture_stats;
    println!(
        "trace: {} packets ({} IP, {} ARP, {} IPX, {} other)",
        a.packets, a.ip_packets, a.arp_packets, a.ipx_packets, a.other_l3_packets
    );
    println!("ingest health: {}", a.health);
    println!("connections: {}", a.conns.len());
    println!(
        "scanner sources removed: {:?} ({} conns)",
        a.scanners_removed, a.scanner_conns_removed
    );
    println!(
        "app records: http={} dns={} nbns={} cifs={} rpc={} nfs={} ncp={} tls={}",
        a.http.len(),
        a.dns.len(),
        a.nbns.len(),
        a.cifs.len(),
        a.rpc.len(),
        a.nfs.len(),
        a.ncp.len(),
        a.tls.len()
    );
    let mut by_cat: std::collections::HashMap<&str, (u64, u64)> = Default::default();
    for c in &a.conns {
        let e = by_cat.entry(c.category.label()).or_default();
        e.0 += 1;
        e.1 += c.payload_bytes();
    }
    let mut rows: Vec<_> = by_cat.into_iter().collect();
    rows.sort_by_key(|(_, (_, b))| std::cmp::Reverse(*b));
    println!("{:<14}{:>10}{:>14}", "category", "conns", "bytes");
    for (cat, (c, b)) in rows {
        println!("{cat:<14}{c:>10}{:>14}", ent_core::report::fmt_bytes(b));
    }
    println!();
    println!("{}", a.metrics.stage_table("Pipeline stage metrics").render());
    ExitCode::SUCCESS
}

/// Validate a `BENCH_pipeline.json` export: schema identifier, required
/// fields, and nonzero wall time and events for every mandatory stage.
fn cmd_obs_check(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_bench_json(&text) {
        Ok(s) => {
            println!(
                "{path}: ok — {} traces, {} packets, study wall {:.1}s",
                s.traces,
                s.packets,
                s.study_wall_us / 1e6
            );
            for (name, wall_us, events) in &s.stages {
                println!("  {name:<16}{:>12.1} ms{:>14} events", wall_us / 1e3, events);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Gate a candidate `BENCH_pipeline.json` against a committed baseline:
/// exact event/byte equality on every mandatory stage plus a one-sided
/// wall-time check (see `ent_core::metrics::compare_bench_json`).
/// `ENT_BENCH_WAIVER=1` waives the wall half for noisy hardware.
fn cmd_bench_compare(args: &Args) -> ExitCode {
    let (Some(base_path), Some(cand_path)) =
        (args.positional.first(), args.positional.get(1))
    else {
        return usage();
    };
    let tolerance: f64 = args
        .flags
        .get("tolerance")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let waived = std::env::var("ENT_BENCH_WAIVER").is_ok_and(|v| !v.is_empty() && v != "0");
    let baseline = or_die(std::fs::read_to_string(base_path), "read baseline json");
    let candidate = or_die(std::fs::read_to_string(cand_path), "read candidate json");
    match compare_bench_json(&baseline, &candidate, tolerance, !waived) {
        Ok(report) => {
            print!("{report}");
            if waived {
                println!("note: wall-time checks waived via ENT_BENCH_WAIVER");
            }
            println!("bench-compare: ok ({cand_path} vs {base_path}, tolerance +{:.0}%)",
                tolerance * 100.0);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-compare: FAILED ({cand_path} vs {base_path}):\n{e}");
            eprintln!(
                "hint: on noisy hardware, re-run with ENT_BENCH_WAIVER=1 to skip the \
                 wall-time half of the gate (event/byte determinism is always enforced); \
                 if the regression is real and intended, regenerate the committed baseline \
                 with `entreport study --bench-json BENCH_pipeline.json`"
            );
            ExitCode::FAILURE
        }
    }
}

/// Resident monitor mode: stream a capture through the pipeline, emitting
/// a full per-epoch report (plus cumulative totals) at every epoch
/// boundary. `--checkpoint` makes each boundary durable: the state file is
/// written atomically, and a later run with the same flag resumes
/// mid-stream, reproducing the remaining epochs exactly. A checkpoint that
/// fails to load degrades to a counted cold start, never an error exit.
fn cmd_monitor(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return usage();
    };
    let data = or_die(std::fs::read(path), "read capture");
    let epoch_secs: u64 = args
        .flags
        .get("epoch-secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    if epoch_secs == 0 {
        eprintln!("entreport: --epoch-secs must be nonzero");
        return ExitCode::from(2);
    }
    let name = args.flags.get("name").map(String::as_str).unwrap_or("monitor");
    let ckpt_path = args.flags.get("checkpoint").map(std::path::PathBuf::from);
    let cfg = MonitorConfig {
        epoch_secs,
        checkpoints: ckpt_path.is_some(),
        pipeline: PipelineConfig {
            keep_scanners: args.switches.contains("keep-scanners"),
            max_conns: args
                .flags
                .get("max-conns")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            max_pending: args
                .flags
                .get("max-pending")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            ..Default::default()
        },
    };
    let meta = or_die(capture_meta(name, &data), "open capture");
    let hint = data.len() / 600;
    let mut resume = None;
    let mut monitor = None;
    if let Some(p) = &ckpt_path {
        if p.exists() {
            let loaded = Checkpoint::load(p).and_then(|ck| {
                let m = Monitor::from_checkpoint(meta.clone(), cfg.clone(), &ck, hint)?;
                Ok((m, ck.resume_offset, ck.reader_clock_us, ck.epoch_index))
            });
            match loaded {
                Ok((m, offset, clock, idx)) => {
                    eprintln!(
                        "resuming from {} at epoch {idx} (offset {offset})",
                        p.display()
                    );
                    resume = Some((offset, clock));
                    monitor = Some(m);
                }
                Err(e) => {
                    eprintln!("checkpoint {}: {e}; degrading to cold start", p.display());
                }
            }
        }
    }
    let recovered = monitor.is_none() && ckpt_path.as_ref().is_some_and(|p| p.exists());
    let mut monitor = monitor.unwrap_or_else(|| Monitor::new(meta, cfg.clone(), hint));
    if recovered {
        monitor.note_checkpoint_recovery();
    }
    let stop_after: Option<u64> = args
        .flags
        .get("stop-after-epochs")
        .and_then(|s| s.parse().ok());
    let result = drive_capture(
        &data,
        &mut monitor,
        resume,
        stop_after,
        |rep| print!("{}", rep.render()),
        |ck| {
            if let Some(p) = &ckpt_path {
                or_die(ck.write_atomic(p), "write checkpoint");
            }
        },
    );
    let Some(summary) = or_die(result, "monitor run") else {
        eprintln!(
            "stopped after {} epochs (checkpoint retained for resume)",
            stop_after.unwrap_or(0)
        );
        return ExitCode::SUCCESS;
    };
    print!("{}", summary.render());
    if let Some(out) = args.flags.get("bench-json") {
        let ctx = MonitorBenchContext {
            epoch_secs,
            max_conns: cfg.pipeline.max_conns as u64,
            max_pending: cfg.pipeline.max_pending as u64,
            epochs: summary.totals.epochs,
            checkpoints: summary.metrics.checkpoint.events,
            evicted_conns: summary.health.evicted_conns,
            pending_dropped: summary.health.pending_dropped,
            checkpoint_recoveries: summary.health.checkpoint_recoveries,
        };
        let doc = monitor_bench_json(&ctx, &summary.metrics);
        or_die(validate_bench_json(&doc), "bench json self-check");
        or_die(std::fs::write(out, &doc), "write bench json");
        eprintln!("monitor metrics written to {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_anonymize(args: &Args) -> ExitCode {
    let (Some(input), Some(output)) = (args.positional.first(), args.positional.get(1)) else {
        return usage();
    };
    let key = args
        .flags
        .get("key")
        .cloned()
        .unwrap_or_else(|| "default-key".into());
    let f = or_die(File::open(input), "open input pcap");
    let meta = TraceMeta {
        dataset: "anon".into(),
        subnet: 0,
        pass: 1,
        duration: Timestamp::from_secs(3_600),
        snaplen: 1500,
        link_capacity_bps: 100_000_000,
    };
    let trace = or_die(Trace::read_pcap(BufReader::new(f), meta), "read pcap");
    let anon = ent_anon::anonymize_trace(&trace, &key);
    let out = or_die(File::create(output), "create output pcap");
    let mut w = BufWriter::new(out);
    or_die(anon.write_pcap(&mut w), "write pcap");
    or_die(w.flush(), "flush output");
    eprintln!("anonymized {} packets -> {}", anon.packets.len(), output);
    ExitCode::SUCCESS
}
